package wire_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
	"serena/internal/wire"
)

func slowProbeProto() *schema.Prototype {
	return schema.MustPrototype("probe", nil,
		schema.MustRel(schema.Attribute{Name: "v", Type: value.Real}), false)
}

// startSlowNode hosts one "probe" service whose invocations block until
// release is closed — a deterministic way to hold server capacity.
func startSlowNode(t *testing.T, release chan struct{}) (string, *service.Registry, *wire.Server) {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(slowProbeProto()); err != nil {
		t.Fatal(err)
	}
	svc := service.NewFunc("s", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			<-release
			return []value.Tuple{{value.NewReal(21)}}, nil
		},
	})
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("node-slow", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, reg, srv
}

// TestSilentClientDropped: a client that connects and never speaks must not
// pin a server goroutine forever once a read deadline is set.
func TestSilentClientDropped(t *testing.T) {
	addr, _, srv := startNode(t)
	srv.SetReadTimeout(100 * time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The server accepted the connection...
	deadline := time.Now().Add(time.Second)
	for srv.ActiveConns() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never registered the connection")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and must drop it after ~readTimeout of silence.
	deadline = time.Now().Add(2 * time.Second)
	for srv.ActiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent client still pinned after 2s: %d conns", srv.ActiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReadTimeoutSparesTalkingClients: the deadline is re-armed per request,
// so a client slower than the deadline overall — but never silent longer
// than it between requests — keeps its connection.
func TestReadTimeoutSparesTalkingClients(t *testing.T) {
	addr, _, srv := startNode(t)
	srv.SetReadTimeout(150 * time.Millisecond)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond) // idle, but under the deadline
		if _, err := c.Invoke("getTemperature", "sensor01", nil, service.Instant(i)); err != nil {
			t.Fatalf("request %d after idle gap: %v", i, err)
		}
	}
}

// TestServerMaxInFlightRejectsOverloaded: the cap rejects excess requests
// before any registry work, and the client surfaces them as
// errors.Is(err, resilience.ErrOverloaded) — the same typed failure the
// local admission limiter produces, so degradation policies compose.
func TestServerMaxInFlightRejectsOverloaded(t *testing.T) {
	release := make(chan struct{})
	addr, _, srv := startSlowNode(t, release)
	srv.SetMaxInFlight(1)

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Invoke("probe", "s", nil, 0); err != nil {
			t.Errorf("capacity-holding invoke failed: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	begin := time.Now()
	_, err = c.Invoke("probe", "s", nil, 1)
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if time.Since(begin) > 500*time.Millisecond {
		t.Fatalf("rejection not fast: %v", time.Since(begin))
	}

	close(release)
	wg.Wait()
	// Capacity freed: the connection survived the rejection and the next
	// request is admitted.
	if _, err := c.Invoke("probe", "s", nil, 2); err != nil {
		t.Fatalf("post-release invoke: %v", err)
	}
}

// TestRemoteAdmissionRejectionIsTyped: when the REMOTE registry's own
// admission limiter rejects, the error string crosses the wire and the
// client still recovers the typed resilience.ErrOverloaded.
func TestRemoteAdmissionRejectionIsTyped(t *testing.T) {
	release := make(chan struct{})
	addr, srvReg, _ := startSlowNode(t, release)
	// No wire-level cap; the remote registry itself enforces admission.
	srvReg.SetAdmissionLimit(1, 0, 0)
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.Invoke("probe", "s", nil, 0)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		inFlight, _, _, _ := srvReg.AdmissionStats()
		if inFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = c.Invoke("probe", "s", nil, 1)
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("remote admission rejection lost its type: %v", err)
	}
	close(release)
	wg.Wait()
}
