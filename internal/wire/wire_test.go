package wire_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/service"
	"serena/internal/value"
	"serena/internal/wire"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.NewNull(),
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(-42),
		value.NewReal(3.25),
		value.NewString("héllo"),
		value.NewService("sensor01"),
		value.NewBlob([]byte{0, 1, 2, 255}),
	}
	for _, v := range vals {
		got, err := wire.DecodeValue(wire.EncodeValue(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got.Key() != v.Key() {
			t.Errorf("round trip %v → %v", v, got)
		}
	}
	if _, err := wire.DecodeValue(wire.Value{Kind: 99}); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tu := value.Tuple{value.NewInt(1), value.NewString("x"), value.NewNull()}
	got, err := wire.DecodeTuple(wire.EncodeTuple(tu))
	if err != nil || !got.Equal(tu) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

// startNode spins up a Local-ERM-style wire server hosting one sensor.
func startNode(t *testing.T) (addr string, reg *service.Registry, srv *wire.Server) {
	t.Helper()
	reg = service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterPrototype(device.SendMessageProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(device.NewSensor("sensor01", "corridor", 20)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(device.NewMessenger("email", "email")); err != nil {
		t.Fatal(err)
	}
	srv = wire.NewServer("node-A", reg)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return bound, reg, srv
}

func TestDescribe(t *testing.T) {
	addr, _, _ := startNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node, infos, err := c.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if node != "node-A" || len(infos) != 2 {
		t.Fatalf("describe = %s %v", node, infos)
	}
	// Sorted by ref: email before sensor01.
	if infos[0].Ref != "email" || infos[1].Ref != "sensor01" {
		t.Fatalf("infos = %v", infos)
	}
	if len(infos[1].Prototypes) != 1 || infos[1].Prototypes[0] != "getTemperature" {
		t.Fatalf("sensor prototypes = %v", infos[1].Prototypes)
	}
}

func TestRemoteInvoke(t *testing.T) {
	addr, _, _ := startNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Invoke("getTemperature", "sensor01", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Kind() != value.Real {
		t.Fatalf("rows = %v", rows)
	}
	// Remote errors are surfaced as errors, not dropped connections.
	_, err = c.Invoke("getTemperature", "ghost", nil, 0)
	if err == nil {
		t.Fatal("unknown remote service accepted")
	}
	if !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("error text lost over the wire: %v", err)
	}
	// The connection survives an application-level error.
	if _, err := c.Invoke("getTemperature", "sensor01", nil, 6); err != nil {
		t.Fatalf("connection broken after remote error: %v", err)
	}
}

func TestRemoteProxyIsAService(t *testing.T) {
	addr, _, _ := startNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, infos, err := c.Describe()
	if err != nil {
		t.Fatal(err)
	}
	var proxy service.Service
	for _, info := range infos {
		if info.Ref == "sensor01" {
			proxy = wire.NewRemote(c, info)
		}
	}
	if proxy == nil || !proxy.Implements("getTemperature") || proxy.Implements("sendMessage") {
		t.Fatal("proxy interface broken")
	}
	// Register the proxy in a central registry and invoke through it — the
	// core-ERM pattern.
	central := service.NewRegistry()
	_ = central.RegisterPrototype(device.GetTemperatureProto())
	if err := central.Register(proxy); err != nil {
		t.Fatal(err)
	}
	rows, err := central.Invoke("getTemperature", "sensor01", nil, 2)
	if err != nil || len(rows) != 1 {
		t.Fatalf("central invoke = %v %v", rows, err)
	}
}

func TestActiveInvocationOverWire(t *testing.T) {
	addr, reg, _ := startNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Invoke("sendMessage", "email",
		value.Tuple{value.NewString("x@y"), value.NewString("hi")}, 0)
	if err != nil || len(rows) != 1 || !rows[0][0].Bool() {
		t.Fatalf("remote send = %v %v", rows, err)
	}
	// The side effect landed on the REMOTE node's messenger.
	svc, _ := reg.Lookup("email")
	out := svc.(*device.Messenger).Outbox()
	if len(out) != 1 || out[0].Address != "x@y" {
		t.Fatalf("outbox = %v", out)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _, _ := startNode(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				if _, err := c.Invoke("getTemperature", "sensor01", nil, service.Instant(j)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerClose(t *testing.T) {
	addr, _, srv := startNode(t)
	c, err := wire.Dial(addr, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := c.Invoke("getTemperature", "sensor01", nil, 0); err == nil {
		t.Fatal("invoke against closed server succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := wire.Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestClientReconnects(t *testing.T) {
	// Kill the server's conns, then restart a server on the same addr is
	// hard with ephemeral ports; instead verify the second call after a
	// server-side connection drop re-establishes transparently: we close
	// just the accepted conns via Close and re-listen on the same port.
	reg := service.NewRegistry()
	_ = reg.RegisterPrototype(device.GetTemperatureProto())
	_ = reg.Register(device.NewSensor("s", "l", 1))
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Invoke("getTemperature", "s", nil, 0); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	srv2 := wire.NewServer("n", reg)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := c.Invoke("getTemperature", "s", nil, 1); err != nil {
		t.Fatalf("client did not reconnect: %v", err)
	}
}

func TestMultiplexedInvocations(t *testing.T) {
	// One client, many concurrent in-flight requests against a slow remote
	// service: with multiplexing, total wall time ≈ one latency, not N.
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	const lat = 40 * time.Millisecond
	if err := reg.Register(service.NewFunc("slow", map[string]service.InvokeFunc{
		"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			time.Sleep(lat)
			return []value.Tuple{{value.NewReal(20)}}, nil
		},
	})); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const inflight = 8
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Invoke("getTemperature", "slow", nil, service.Instant(i))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Sequential would take ≈ 8×40ms = 320ms; multiplexed ≈ 40ms. Allow 4×.
	if elapsed > 4*lat {
		t.Fatalf("multiplexing ineffective: %v for %d in-flight requests", elapsed, inflight)
	}
}

func TestClientTimeout(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewFunc("hang", map[string]service.InvokeFunc{
		"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Invoke("getTemperature", "hang", nil, 0)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout too slow")
	}
}

func TestInFlightRequestsFailFastOnConnectionDrop(t *testing.T) {
	// A request stuck behind a dead connection must not hang until the
	// timeout: the read loop's death fails it immediately (and the retry
	// loop then gives up quickly because the listener is gone too).
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	if err := reg.Register(service.NewFunc("slow", map[string]service.InvokeFunc{
		"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			<-block
			return []value.Tuple{{value.NewReal(20)}}, nil
		},
	})); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(addr, 10*time.Second) // timeout far beyond the test budget
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(2, time.Millisecond, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := c.Invoke("getTemperature", "slow", nil, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server
	close(block)
	_ = srv.Close() // drop the connection under the in-flight request
	select {
	case err := <-done:
		if err == nil {
			// The response raced the close and won — also fine.
			return
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request hung after connection drop")
	}
}

func TestInvokeCtxDeadline(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewFunc("hang", map[string]service.InvokeFunc{
		"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.InvokeCtx(ctx, "getTemperature", "hang", nil, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("context deadline not enforced promptly")
	}
}

func TestRemoteProxyHonorsRegistryTimeout(t *testing.T) {
	// The registry's per-invocation timeout must flow through the Remote
	// proxy into the wire round trip (service.CtxService).
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewFunc("hang", map[string]service.InvokeFunc{
		"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("n", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, infos, err := c.Describe()
	if err != nil {
		t.Fatal(err)
	}
	central := service.NewRegistry()
	if err := central.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if err := central.Register(wire.NewRemote(c, info)); err != nil {
			t.Fatal(err)
		}
	}
	central.SetInvokeTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = central.Invoke("getTemperature", "hang", nil, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("registry timeout not enforced over the wire")
	}
}

func TestClientClosedRejectsCalls(t *testing.T) {
	addr, _, _ := startNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if _, err := c.Invoke("getTemperature", "sensor01", nil, 0); err == nil {
		t.Fatal("closed client accepted a call")
	}
}
