package algebra_test

import (
	"math/rand"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

// The tests in this file drive each delta operator and its one-shot
// counterpart in lockstep over random event sequences: per step a random
// set-level delta mutates the operand(s), the delta operator's output is
// folded into a maintained output set, and that set must equal the one-shot
// operator applied to the full current operand(s). Fixed seeds; the failing
// seed and step are printed on mismatch.

const (
	deltaSeeds = 8
	deltaSteps = 60
)

// world is one operand's evolving set of tuples plus its schema.
type world struct {
	sch *schema.Extended
	cur map[string]value.Tuple
	rng *rand.Rand
	gen func(*rand.Rand) value.Tuple
}

func newWorld(sch *schema.Extended, rng *rand.Rand, gen func(*rand.Rand) value.Tuple) *world {
	return &world{sch: sch, cur: map[string]value.Tuple{}, rng: rng, gen: gen}
}

// step produces a random normalized delta (deletes of present tuples,
// inserts of absent ones) and applies it to the world.
func (w *world) step() algebra.Delta {
	var d algebra.Delta
	// Deletes: each present tuple leaves with ~20% probability.
	gone := map[string]bool{}
	for k, t := range w.cur {
		if w.rng.Intn(5) == 0 {
			d.Del = append(d.Del, t)
			delete(w.cur, k)
			gone[k] = true
		}
	}
	// Inserts: a few fresh tuples. Tuples already present are skipped, and
	// so are tuples deleted this same step — deltas are NORMALIZED (no
	// tuple in both halves), which is the operators' input contract.
	for i := w.rng.Intn(4); i > 0; i-- {
		t := w.gen(w.rng)
		k := t.Key()
		if _, ok := w.cur[k]; ok || gone[k] {
			continue
		}
		w.cur[k] = t
		d.Ins = append(d.Ins, t)
	}
	return d
}

func (w *world) relation() *algebra.XRelation {
	return algebra.FromKeyed(w.sch, w.cur)
}

// fold applies an operator's output delta to the maintained output set,
// failing on underflow (delete of an absent tuple) or duplicate insert —
// both would mean the operator emitted a non-set-consistent delta.
func fold(t *testing.T, out map[string]value.Tuple, d algebra.Delta, seed int64, step int) {
	t.Helper()
	for _, tu := range d.Del {
		if _, ok := out[tu.Key()]; !ok {
			t.Fatalf("seed %d step %d: delta deletes absent output tuple %s", seed, step, tu)
		}
		delete(out, tu.Key())
	}
	for _, tu := range d.Ins {
		if _, ok := out[tu.Key()]; ok {
			t.Fatalf("seed %d step %d: delta re-inserts present output tuple %s", seed, step, tu)
		}
		out[tu.Key()] = tu
	}
}

func requireEqual(t *testing.T, sch *schema.Extended, out map[string]value.Tuple, want *algebra.XRelation, seed int64, step int) {
	t.Helper()
	got := algebra.FromKeyed(sch, out)
	if !got.EqualContents(want) {
		t.Fatalf("seed %d step %d: delta-maintained output diverged\ngot:\n%s\nwant:\n%s",
			seed, step, got.Table(), want.Table())
	}
}

// genReading generates temperatures-stream tuples over a small domain so
// projections collapse and groups churn.
func genReading(rng *rand.Rand) value.Tuple {
	sensors := []string{"s01", "s02", "s03", "s04", "s05"}
	locations := []string{"office", "corridor", "roof"}
	return value.Tuple{
		value.NewService(sensors[rng.Intn(len(sensors))]),
		value.NewString(locations[rng.Intn(len(locations))]),
		value.NewReal(float64(rng.Intn(40)) / 3), // awkward floats to stress bit-identity
	}
}

// genStaff generates surveillance tuples (name, location) for the join's
// right side.
func genStaff(rng *rand.Rand) value.Tuple {
	names := []string{"Carla", "Nicolas", "Francois", "Rachida"}
	locations := []string{"office", "corridor", "roof"}
	return value.Tuple{
		value.NewString(names[rng.Intn(len(names))]),
		value.NewString(locations[rng.Intn(len(locations))]),
	}
}

// runUnary drives a single-operand delta operator against its one-shot
// reference over random histories.
func runUnary(t *testing.T, mk func() interface {
	Apply(algebra.Delta) (algebra.Delta, error)
	Schema() *schema.Extended
}, oneShot func(*algebra.XRelation) (*algebra.XRelation, error)) {
	t.Helper()
	for seed := int64(0); seed < deltaSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		op := mk()
		w := newWorld(paperenv.TemperaturesSchema(), rng, genReading)
		out := map[string]value.Tuple{}
		for step := 0; step < deltaSteps; step++ {
			d, err := op.Apply(w.step())
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			fold(t, out, d, seed, step)
			want, err := oneShot(w.relation())
			if err != nil {
				t.Fatalf("seed %d step %d: one-shot: %v", seed, step, err)
			}
			requireEqual(t, op.Schema(), out, want, seed, step)
		}
	}
}

func TestDeltaSelectMatchesOneShot(t *testing.T) {
	f := algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(6)))
	runUnary(t, func() interface {
		Apply(algebra.Delta) (algebra.Delta, error)
		Schema() *schema.Extended
	} {
		op, err := algebra.NewDeltaSelect(paperenv.TemperaturesSchema(), f)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}, func(r *algebra.XRelation) (*algebra.XRelation, error) {
		return algebra.Select(r, f)
	})
}

func TestDeltaProjectMatchesOneShot(t *testing.T) {
	// Projecting onto location collapses many readings per output tuple —
	// the support-counting case.
	runUnary(t, func() interface {
		Apply(algebra.Delta) (algebra.Delta, error)
		Schema() *schema.Extended
	} {
		op, err := algebra.NewDeltaProject(paperenv.TemperaturesSchema(), []string{"location"})
		if err != nil {
			t.Fatal(err)
		}
		return op
	}, func(r *algebra.XRelation) (*algebra.XRelation, error) {
		return algebra.Project(r, []string{"location"})
	})
}

func TestDeltaRenameMatchesOneShot(t *testing.T) {
	runUnary(t, func() interface {
		Apply(algebra.Delta) (algebra.Delta, error)
		Schema() *schema.Extended
	} {
		op, err := algebra.NewDeltaRename(paperenv.TemperaturesSchema(), "location", "place")
		if err != nil {
			t.Fatal(err)
		}
		return op
	}, func(r *algebra.XRelation) (*algebra.XRelation, error) {
		return algebra.Rename(r, "location", "place")
	})
}

func TestDeltaAssignMatchesOneShot(t *testing.T) {
	// Assign realizes a VIRTUAL attribute, so it runs over the sensors
	// schema (where temperature is virtual) with sensor-shaped tuples.
	genSensor := func(rng *rand.Rand) value.Tuple {
		sensors := []string{"s01", "s02", "s03", "s04", "s05", "s06"}
		locations := []string{"office", "corridor", "roof"}
		return value.Tuple{
			value.NewService(sensors[rng.Intn(len(sensors))]),
			value.NewString(locations[rng.Intn(len(locations))]),
		}
	}
	for seed := int64(0); seed < deltaSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		op, err := algebra.NewDeltaAssignConst(paperenv.SensorsSchema(), "temperature", value.NewReal(21.5))
		if err != nil {
			t.Fatal(err)
		}
		w := newWorld(paperenv.SensorsSchema(), rng, genSensor)
		out := map[string]value.Tuple{}
		for step := 0; step < deltaSteps; step++ {
			d, err := op.Apply(w.step())
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			fold(t, out, d, seed, step)
			want, err := algebra.AssignConst(w.relation(), "temperature", value.NewReal(21.5))
			if err != nil {
				t.Fatalf("seed %d step %d: one-shot: %v", seed, step, err)
			}
			requireEqual(t, op.Schema(), out, want, seed, step)
		}
	}
}

func TestDeltaJoinMatchesOneShot(t *testing.T) {
	for seed := int64(0); seed < deltaSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		op, err := algebra.NewDeltaJoin(paperenv.TemperaturesSchema(), paperenv.SurveillanceSchema())
		if err != nil {
			t.Fatal(err)
		}
		left := newWorld(paperenv.TemperaturesSchema(), rng, genReading)
		right := newWorld(paperenv.SurveillanceSchema(), rng, genStaff)
		out := map[string]value.Tuple{}
		for step := 0; step < deltaSteps; step++ {
			d, err := op.Apply(left.step(), right.step())
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			fold(t, out, d, seed, step)
			want, err := algebra.NaturalJoin(left.relation(), right.relation())
			if err != nil {
				t.Fatalf("seed %d step %d: one-shot: %v", seed, step, err)
			}
			requireEqual(t, op.Schema(), out, want, seed, step)
		}
	}
}

func TestDeltaSetOpsMatchOneShot(t *testing.T) {
	cases := []struct {
		name    string
		kind    int
		oneShot func(a, b *algebra.XRelation) (*algebra.XRelation, error)
	}{
		{"union", algebra.DeltaUnion, algebra.Union},
		{"intersect", algebra.DeltaIntersect, algebra.Intersect},
		{"diff", algebra.DeltaDiff, algebra.Diff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < deltaSeeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				op, err := algebra.NewDeltaSetOp(tc.kind, paperenv.TemperaturesSchema(), paperenv.TemperaturesSchema())
				if err != nil {
					t.Fatal(err)
				}
				// Both sides draw from the SAME small domain so overlap —
				// where set-op transitions live — is common.
				left := newWorld(paperenv.TemperaturesSchema(), rng, genReading)
				right := newWorld(paperenv.TemperaturesSchema(), rng, genReading)
				out := map[string]value.Tuple{}
				for step := 0; step < deltaSteps; step++ {
					d, err := op.Apply(left.step(), right.step())
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					fold(t, out, d, seed, step)
					want, err := tc.oneShot(left.relation(), right.relation())
					if err != nil {
						t.Fatalf("seed %d step %d: one-shot: %v", seed, step, err)
					}
					requireEqual(t, op.Schema(), out, want, seed, step)
				}
			}
		})
	}
}

func TestDeltaAggregateMatchesOneShot(t *testing.T) {
	groupBy := []string{"location"}
	aggs := []algebra.AggSpec{
		{Func: algebra.Count, As: "n"},
		{Func: algebra.Sum, Attr: "temperature", As: "total"},
		{Func: algebra.Min, Attr: "temperature", As: "low"},
		{Func: algebra.Max, Attr: "temperature", As: "high"},
		{Func: algebra.Mean, Attr: "temperature", As: "avg"},
	}
	runUnary(t, func() interface {
		Apply(algebra.Delta) (algebra.Delta, error)
		Schema() *schema.Extended
	} {
		op, err := algebra.NewDeltaAggregate(paperenv.TemperaturesSchema(), groupBy, aggs)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}, func(r *algebra.XRelation) (*algebra.XRelation, error) {
		return algebra.Aggregate(r, groupBy, aggs)
	})
}

func TestDeltaGateMultisetToSet(t *testing.T) {
	// The gate sees MULTISET traffic (repeated inserts of one tuple) and
	// must emit set transitions only at 0↔positive boundaries.
	for seed := int64(0); seed < deltaSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gate := algebra.NewDeltaGate()
		counts := map[string]int{}
		tuples := map[string]value.Tuple{}
		set := map[string]value.Tuple{}
		for step := 0; step < deltaSteps; step++ {
			var enter, leave []value.Tuple
			for i := rng.Intn(5); i > 0; i-- {
				tu := genReading(rng)
				enter = append(enter, tu)
				counts[tu.Key()]++
				tuples[tu.Key()] = tu
			}
			for k, c := range counts {
				if c > 0 && rng.Intn(3) == 0 {
					leave = append(leave, tuples[k])
					counts[k]--
				}
			}
			d, err := gate.Apply(enter, leave)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			fold(t, set, d, seed, step)
			for k, c := range counts {
				_, present := set[k]
				if (c > 0) != present {
					t.Fatalf("seed %d step %d: gate set state for %s: count=%d present=%v", seed, step, k, c, present)
				}
			}
		}
	}
}

func TestDeltaGateUnderflowErrors(t *testing.T) {
	gate := algebra.NewDeltaGate()
	tu := genReading(rand.New(rand.NewSource(1)))
	if _, err := gate.Apply(nil, []value.Tuple{tu}); err == nil {
		t.Fatal("leaving an absent tuple must error")
	}
}

func TestDeltaOperatorsResetClearState(t *testing.T) {
	// After Reset a re-fed full state must reproduce the same output as a
	// fresh operator (re-init ticks depend on this).
	rng := rand.New(rand.NewSource(42))
	op, err := algebra.NewDeltaProject(paperenv.TemperaturesSchema(), []string{"location"})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(paperenv.TemperaturesSchema(), rng, genReading)
	for step := 0; step < 10; step++ {
		if _, err := op.Apply(w.step()); err != nil {
			t.Fatal(err)
		}
	}
	op.Reset()
	var full algebra.Delta
	for _, tu := range w.cur {
		full.Ins = append(full.Ins, tu)
	}
	d, err := op.Apply(full)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]value.Tuple{}
	fold(t, out, d, 42, 0)
	want, err := algebra.Project(w.relation(), []string{"location"})
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, op.Schema(), out, want, 42, 0)
}
