package algebra_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/value"
)

func TestCmpOpParsing(t *testing.T) {
	cases := map[string]algebra.CmpOp{
		"=": algebra.Eq, "==": algebra.Eq, "!=": algebra.Ne, "<>": algebra.Ne,
		"<": algebra.Lt, "<=": algebra.Le, ">": algebra.Gt, ">=": algebra.Ge,
		"contains": algebra.Contains, "CONTAINS": algebra.Contains,
	}
	for s, want := range cases {
		got, ok := algebra.CmpOpFromString(s)
		if !ok || got != want {
			t.Errorf("CmpOpFromString(%q) = %v,%v", s, got, ok)
		}
	}
	if _, ok := algebra.CmpOpFromString("~"); ok {
		t.Error("bogus operator accepted")
	}
}

func TestFormulaValidateRejectsVirtualAttrs(t *testing.T) {
	sch := paperenv.ContactsSchema()
	// 'sent' is virtual: Table 3b forbids it in selection formulas.
	f := algebra.Compare(algebra.Attr("sent"), algebra.Eq, algebra.Const(value.NewBool(true)))
	if err := f.Validate(sch); err == nil {
		t.Fatal("virtual attribute accepted in formula")
	}
	g := algebra.Compare(algebra.Attr("ghost"), algebra.Eq, algebra.Const(value.NewInt(1)))
	if err := g.Validate(sch); err == nil {
		t.Fatal("unknown attribute accepted in formula")
	}
	h := algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("Carla")))
	if err := h.Validate(sch); err != nil {
		t.Fatalf("valid formula rejected: %v", err)
	}
}

func TestFormulaValidateTypeChecks(t *testing.T) {
	sch := paperenv.ContactsSchema()
	bad := algebra.Compare(algebra.Attr("name"), algebra.Lt, algebra.Const(value.NewInt(3)))
	if err := bad.Validate(sch); err == nil {
		t.Fatal("STRING < INTEGER accepted")
	}
	cs := paperenv.SensorsSchema()
	// location STRING contains INTEGER → invalid.
	badC := algebra.Compare(algebra.Attr("location"), algebra.Contains, algebra.Const(value.NewInt(1)))
	if err := badC.Validate(cs); err == nil {
		t.Fatal("contains with numeric operand accepted")
	}
	okC := algebra.Compare(algebra.Attr("location"), algebra.Contains, algebra.Const(value.NewString("ffi")))
	if err := okC.Validate(cs); err != nil {
		t.Fatalf("valid contains rejected: %v", err)
	}
	// NULL literal comparisons validate (and evaluate to false).
	nullCmp := algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewNull()))
	if err := nullCmp.Validate(sch); err != nil {
		t.Fatalf("NULL comparison rejected: %v", err)
	}
}

func TestFormulaEval(t *testing.T) {
	sch := paperenv.ContactsSchema()
	carla := value.Tuple{value.NewString("Carla"), value.NewString("carla@elysee.fr"), value.NewService("email")}

	eq := algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("Carla")))
	ne := algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla")))
	if !eq.Eval(sch, carla) || ne.Eval(sch, carla) {
		t.Fatal("Eq/Ne broken")
	}
	contains := algebra.Compare(algebra.Attr("address"), algebra.Contains, algebra.Const(value.NewString("elysee")))
	if !contains.Eval(sch, carla) {
		t.Fatal("Contains broken")
	}
	attrAttr := algebra.Compare(algebra.Attr("address"), algebra.Contains, algebra.Attr("messenger"))
	if attrAttr.Eval(sch, carla) { // "carla@elysee.fr" does not contain "email"
		t.Fatal("attr-attr Contains broken")
	}
}

func TestFormulaEvalNumericOrder(t *testing.T) {
	sch := paperenv.TemperaturesSchema()
	hot := value.Tuple{value.NewService("s1"), value.NewString("office"), value.NewReal(36.0)}
	cold := value.Tuple{value.NewService("s2"), value.NewString("roof"), value.NewReal(10.0)}
	gt := algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(35.5)))
	ge := algebra.Compare(algebra.Attr("temperature"), algebra.Ge, algebra.Const(value.NewInt(36)))
	lt := algebra.Compare(algebra.Attr("temperature"), algebra.Lt, algebra.Const(value.NewReal(12.0)))
	le := algebra.Compare(algebra.Attr("temperature"), algebra.Le, algebra.Const(value.NewReal(10)))
	if !gt.Eval(sch, hot) || gt.Eval(sch, cold) {
		t.Fatal("Gt broken")
	}
	if !ge.Eval(sch, hot) { // mixed Int/Real comparison
		t.Fatal("Ge with Int constant broken")
	}
	if !lt.Eval(sch, cold) || lt.Eval(sch, hot) {
		t.Fatal("Lt broken")
	}
	if !le.Eval(sch, cold) {
		t.Fatal("Le broken")
	}
}

func TestFormulaEvalNull(t *testing.T) {
	sch := paperenv.ContactsSchema()
	withNull := value.Tuple{value.NewNull(), value.NewString("x@y"), value.NewService("email")}
	eq := algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewNull()))
	if eq.Eval(sch, withNull) {
		t.Fatal("NULL = NULL must be false in predicates")
	}
	lt := algebra.Compare(algebra.Attr("name"), algebra.Lt, algebra.Const(value.NewString("Z")))
	if lt.Eval(sch, withNull) {
		t.Fatal("NULL < x must be false")
	}
	neg := algebra.NewNot(lt)
	if !neg.Eval(sch, withNull) {
		t.Fatal("NOT(NULL < x) is true in two-valued semantics")
	}
}

func TestBooleanCombinators(t *testing.T) {
	sch := paperenv.ContactsSchema()
	carla := value.Tuple{value.NewString("Carla"), value.NewString("carla@elysee.fr"), value.NewService("email")}
	isCarla := algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("Carla")))
	isEmail := algebra.Compare(algebra.Attr("messenger"), algebra.Eq, algebra.Const(value.NewService("email")))
	isJabber := algebra.Compare(algebra.Attr("messenger"), algebra.Eq, algebra.Const(value.NewService("jabber")))

	if !algebra.NewAnd(isCarla, isEmail).Eval(sch, carla) {
		t.Fatal("And broken")
	}
	if algebra.NewAnd(isCarla, isJabber).Eval(sch, carla) {
		t.Fatal("And should be false")
	}
	if !algebra.NewOr(isJabber, isEmail).Eval(sch, carla) {
		t.Fatal("Or broken")
	}
	if algebra.NewOr().Eval(sch, carla) != true {
		t.Fatal("empty Or defined as true (vacuous)")
	}
	if !algebra.NewAnd().Eval(sch, carla) {
		t.Fatal("empty And must be true")
	}
	if algebra.NewNot(isCarla).Eval(sch, carla) {
		t.Fatal("Not broken")
	}
	if !(algebra.True{}).Eval(sch, carla) {
		t.Fatal("True broken")
	}
	// Validation recurses.
	bad := algebra.NewAnd(isCarla, algebra.Compare(algebra.Attr("sent"), algebra.Eq, algebra.Const(value.NewBool(true))))
	if err := bad.Validate(sch); err == nil {
		t.Fatal("And validation should recurse into terms")
	}
}

func TestFormulaAttrsAndString(t *testing.T) {
	f := algebra.NewAnd(
		algebra.Compare(algebra.Attr("a"), algebra.Lt, algebra.Attr("b")),
		algebra.NewNot(algebra.Compare(algebra.Attr("c"), algebra.Eq, algebra.Const(value.NewInt(1)))),
	)
	attrs := f.Attrs(nil)
	if len(attrs) != 3 {
		t.Fatalf("Attrs = %v", attrs)
	}
	s := f.String()
	if s != `(a < b) and (not (c = 1))` {
		t.Fatalf("String = %q", s)
	}
}
