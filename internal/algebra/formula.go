package algebra

import (
	"fmt"
	"strings"

	"serena/internal/schema"
	"serena/internal/value"
)

// Formula is a selection formula over the real schema of an extended
// relation (Table 3b: "selection formulas can only apply on attributes from
// the real schema, as virtual attributes do not have a value").
//
// The usual relational grammar is supported: attribute/constant and
// attribute/attribute comparisons combined with AND, OR and NOT, plus a
// CONTAINS predicate for substring search (used by the paper's RSS-keyword
// scenario).
type Formula interface {
	// Validate checks the formula against a schema: every referenced
	// attribute must be a real attribute and comparisons must be
	// well-typed.
	Validate(sch *schema.Extended) error
	// Eval evaluates the formula on a tuple of the schema. Comparisons
	// involving NULL evaluate to false (no three-valued logic in the
	// paper's model; NULL never satisfies a predicate except via NOT).
	Eval(sch *schema.Extended, t value.Tuple) bool
	// Attrs appends the referenced attribute names to dst.
	Attrs(dst []string) []string
	// String renders the formula in Serena Algebra Language syntax.
	String() string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Supported comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Contains // substring match on STRING/SERVICE operands
)

var cmpNames = map[CmpOp]string{
	Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Contains: "contains",
}

// String returns the SAL spelling of the operator.
func (op CmpOp) String() string {
	if s, ok := cmpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// CmpOpFromString parses an operator token ("=", "==", "!=", "<>", "<",
// "<=", ">", ">=", "contains").
func CmpOpFromString(s string) (CmpOp, bool) {
	switch strings.ToLower(s) {
	case "=", "==":
		return Eq, true
	case "!=", "<>":
		return Ne, true
	case "<":
		return Lt, true
	case "<=":
		return Le, true
	case ">":
		return Gt, true
	case ">=":
		return Ge, true
	case "contains":
		return Contains, true
	}
	return 0, false
}

// Operand is one side of a comparison: either an attribute reference or a
// constant.
type Operand struct {
	Attr  string // non-empty for attribute references
	Const value.Value
}

// Attr returns an attribute operand.
func Attr(name string) Operand { return Operand{Attr: name} }

// Const returns a constant operand.
func Const(v value.Value) Operand { return Operand{Const: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.Attr != "" {
		return o.Attr
	}
	return o.Const.String()
}

func (o Operand) typeIn(sch *schema.Extended) (value.Kind, error) {
	if o.Attr == "" {
		return o.Const.Kind(), nil
	}
	if !sch.Has(o.Attr) {
		return 0, fmt.Errorf("algebra: unknown attribute %q in formula", o.Attr)
	}
	if !sch.IsReal(o.Attr) {
		return 0, fmt.Errorf("algebra: selection formula references virtual attribute %q (Table 3b forbids this)", o.Attr)
	}
	k, _ := sch.TypeOf(o.Attr)
	return k, nil
}

func (o Operand) valueIn(sch *schema.Extended, t value.Tuple) value.Value {
	if o.Attr == "" {
		return o.Const
	}
	return t[sch.RealIndex(o.Attr)]
}

// Cmp is an atomic comparison formula.
type Cmp struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Compare builds a comparison formula.
func Compare(left Operand, op CmpOp, right Operand) *Cmp {
	return &Cmp{Left: left, Op: op, Right: right}
}

// Validate implements Formula.
func (c *Cmp) Validate(sch *schema.Extended) error {
	lk, err := c.Left.typeIn(sch)
	if err != nil {
		return err
	}
	rk, err := c.Right.typeIn(sch)
	if err != nil {
		return err
	}
	if lk == value.Null || rk == value.Null {
		return nil // NULL literal comparisons are allowed, always false
	}
	if c.Op == Contains {
		textual := func(k value.Kind) bool { return k == value.String || k == value.Service }
		if !textual(lk) || !textual(rk) {
			return fmt.Errorf("algebra: contains needs textual operands, got %s contains %s", lk, rk)
		}
		return nil
	}
	if !value.Comparable(lk, rk) {
		return fmt.Errorf("algebra: cannot compare %s %s %s", lk, c.Op, rk)
	}
	return nil
}

// Eval implements Formula.
func (c *Cmp) Eval(sch *schema.Extended, t value.Tuple) bool {
	l := c.Left.valueIn(sch, t)
	r := c.Right.valueIn(sch, t)
	if l.IsNull() || r.IsNull() {
		return false
	}
	if c.Op == Contains {
		ls, ok1 := l.AsString()
		rs, ok2 := r.AsString()
		return ok1 && ok2 && strings.Contains(ls, rs)
	}
	if !value.Comparable(l.Kind(), r.Kind()) {
		return false
	}
	cmp := value.Compare(l, r)
	switch c.Op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// Attrs implements Formula.
func (c *Cmp) Attrs(dst []string) []string {
	if c.Left.Attr != "" {
		dst = append(dst, c.Left.Attr)
	}
	if c.Right.Attr != "" {
		dst = append(dst, c.Right.Attr)
	}
	return dst
}

// String implements Formula.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is a conjunction of formulas.
type And struct{ Terms []Formula }

// NewAnd builds a conjunction.
func NewAnd(terms ...Formula) *And { return &And{Terms: terms} }

// Validate implements Formula.
func (a *And) Validate(sch *schema.Extended) error {
	for _, f := range a.Terms {
		if err := f.Validate(sch); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Formula.
func (a *And) Eval(sch *schema.Extended, t value.Tuple) bool {
	for _, f := range a.Terms {
		if !f.Eval(sch, t) {
			return false
		}
	}
	return true
}

// Attrs implements Formula.
func (a *And) Attrs(dst []string) []string {
	for _, f := range a.Terms {
		dst = f.Attrs(dst)
	}
	return dst
}

// String implements Formula.
func (a *And) String() string { return joinFormulas(a.Terms, " and ") }

// Or is a disjunction of formulas.
type Or struct{ Terms []Formula }

// NewOr builds a disjunction.
func NewOr(terms ...Formula) *Or { return &Or{Terms: terms} }

// Validate implements Formula.
func (o *Or) Validate(sch *schema.Extended) error {
	for _, f := range o.Terms {
		if err := f.Validate(sch); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Formula.
func (o *Or) Eval(sch *schema.Extended, t value.Tuple) bool {
	for _, f := range o.Terms {
		if f.Eval(sch, t) {
			return true
		}
	}
	return len(o.Terms) == 0
}

// Attrs implements Formula.
func (o *Or) Attrs(dst []string) []string {
	for _, f := range o.Terms {
		dst = f.Attrs(dst)
	}
	return dst
}

// String implements Formula.
func (o *Or) String() string { return joinFormulas(o.Terms, " or ") }

// Not negates a formula.
type Not struct{ Term Formula }

// NewNot builds a negation.
func NewNot(f Formula) *Not { return &Not{Term: f} }

// Validate implements Formula.
func (n *Not) Validate(sch *schema.Extended) error { return n.Term.Validate(sch) }

// Eval implements Formula.
func (n *Not) Eval(sch *schema.Extended, t value.Tuple) bool { return !n.Term.Eval(sch, t) }

// Attrs implements Formula.
func (n *Not) Attrs(dst []string) []string { return n.Term.Attrs(dst) }

// String implements Formula.
func (n *Not) String() string { return "not (" + n.Term.String() + ")" }

// True is the always-true formula.
type True struct{}

// Validate implements Formula.
func (True) Validate(*schema.Extended) error { return nil }

// Eval implements Formula.
func (True) Eval(*schema.Extended, value.Tuple) bool { return true }

// Attrs implements Formula.
func (True) Attrs(dst []string) []string { return dst }

// String implements Formula.
func (True) String() string { return "true" }

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}
