package algebra_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

// countingParallelInvoker counts physical invocations and fails fast for one
// poisoned ref while every other call takes a little while — the shape of
// the over-firing bug: a fatal error on one tuple must stop the pool from
// scheduling the remaining jobs.
type countingParallelInvoker struct {
	workers int
	delay   time.Duration
	failRef string
	failErr error
	calls   atomic.Int64
}

func (ci *countingParallelInvoker) MaxParallel() int { return ci.workers }

func (ci *countingParallelInvoker) Invoke(_ schema.BindingPattern, ref string, _ value.Tuple) ([]value.Tuple, error) {
	ci.calls.Add(1)
	if ref == ci.failRef {
		return nil, ci.failErr
	}
	time.Sleep(ci.delay)
	return []value.Tuple{{value.NewReal(20)}}, nil
}

func sensorRelation(n int, refs ...string) *algebra.XRelation {
	tuples := make([]value.Tuple, 0, n+len(refs))
	for _, r := range refs {
		tuples = append(tuples, value.Tuple{value.NewService(r), value.NewString("lab")})
	}
	for i := 0; i < n; i++ {
		tuples = append(tuples, value.Tuple{
			value.NewService(fmt.Sprintf("ok%03d", i)), value.NewString("lab"),
		})
	}
	return algebra.MustNew(paperenv.SensorsSchema(), tuples)
}

// TestFanoutStopsSchedulingAfterFatalError is the regression test for the
// β over-firing bug: with FAIL semantics the whole operator aborts on the
// first error, so every invocation scheduled after the failure is a pure
// side effect whose result is thrown away. The pool must stop pulling new
// jobs once a worker has recorded a fatal error.
func TestFanoutStopsSchedulingAfterFatalError(t *testing.T) {
	const jobs = 100
	boom := errors.New("sensor on fire")
	// The poisoned ref is the FIRST job, so a worker hits it immediately
	// while the other workers are still sleeping in their first call.
	r := sensorRelation(jobs-1, "poison")
	bp, err := r.Schema().FindBP("getTemperature", "")
	if err != nil {
		t.Fatal(err)
	}
	ci := &countingParallelInvoker{workers: 4, delay: 5 * time.Millisecond, failRef: "poison", failErr: boom}
	if _, err := algebra.Invoke(r, bp, ci); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Workers already mid-call when the failure lands may finish (bounded
	// by the worker count); anything near the full job count means the
	// pool kept scheduling after the error.
	if got := ci.calls.Load(); got > 16 {
		t.Fatalf("pool fired %d invocations after a fatal error on job 0 (want ≤ 16 of %d)", got, jobs)
	}
}

// TestFanoutErrorIsFirstInInputOrder: when several jobs fail concurrently,
// the reported error is the failing job with the smallest input index, so
// the outcome is deterministic regardless of worker interleaving.
func TestFanoutErrorIsFirstInInputOrder(t *testing.T) {
	errA := errors.New("err-a")
	errB := errors.New("err-b")
	r := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewService("slowfail"), value.NewString("lab")},
		{value.NewService("fastfail"), value.NewString("lab")},
	})
	bp, _ := r.Schema().FindBP("getTemperature", "")
	inv := &orderInvoker{errs: map[string]error{"slowfail": errA, "fastfail": errB}}
	for i := 0; i < 25; i++ { // repeat: the race only shows up sometimes
		if _, err := algebra.Invoke(r, bp, inv); !errors.Is(err, errA) {
			t.Fatalf("got %v, want first-in-input-order error %v", err, errA)
		}
	}
}

type orderInvoker struct {
	errs map[string]error
}

func (oi *orderInvoker) MaxParallel() int { return 2 }

func (oi *orderInvoker) Invoke(_ schema.BindingPattern, ref string, _ value.Tuple) ([]value.Tuple, error) {
	if err := oi.errs[ref]; err != nil {
		if ref == "slowfail" {
			time.Sleep(2 * time.Millisecond) // lose the race on purpose
		}
		return nil, err
	}
	return []value.Tuple{{value.NewReal(1)}}, nil
}

// batchRecorder implements BatchInvoker and records each batch it receives.
type batchRecorder struct {
	max     int
	batches [][]string
	single  atomic.Int64
}

func (br *batchRecorder) MaxBatch() int    { return br.max }
func (br *batchRecorder) MaxParallel() int { return 1 }

func (br *batchRecorder) Invoke(_ schema.BindingPattern, ref string, _ value.Tuple) ([]value.Tuple, error) {
	br.single.Add(1)
	return []value.Tuple{{value.NewBool(true)}}, nil
}

func (br *batchRecorder) InvokeBatch(_ schema.BindingPattern, refs []string, _ []value.Tuple) []algebra.BatchResult {
	br.batches = append(br.batches, append([]string(nil), refs...))
	out := make([]algebra.BatchResult, len(refs))
	for i := range out {
		out[i] = algebra.BatchResult{Rows: []value.Tuple{{value.NewReal(20)}}}
	}
	return out
}

// TestInvokeBatchesPassiveFanout: a passive β over several tuples goes to
// the BatchInvoker as one work list in input order.
func TestInvokeBatchesPassiveFanout(t *testing.T) {
	r := sensorRelation(5)
	bp, _ := r.Schema().FindBP("getTemperature", "")
	br := &batchRecorder{max: 64}
	out, err := algebra.Invoke(r, bp, br)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("Len = %d, want 5", out.Len())
	}
	if len(br.batches) != 1 || len(br.batches[0]) != 5 {
		t.Fatalf("batches = %v, want one batch of 5", br.batches)
	}
	if br.single.Load() != 0 {
		t.Fatalf("per-tuple Invoke fired %d times alongside the batch", br.single.Load())
	}
	if br.batches[0][0] != "ok000" || br.batches[0][4] != "ok004" {
		t.Fatalf("batch not in input order: %v", br.batches[0])
	}
}

// TestInvokeNeverBatchesActiveBP: each active occurrence is a distinct
// Definition 8 action and must fire per tuple — the batch path is gated on
// passive binding patterns.
func TestInvokeNeverBatchesActiveBP(t *testing.T) {
	withText, err := algebra.AssignConst(paperenv.Contacts(), "text", value.NewString("Bonjour!"))
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := withText.Schema().FindBP("sendMessage", "")
	if !bp.Active() {
		t.Fatal("fixture error: sendMessage should be active")
	}
	br := &batchRecorder{max: 64}
	if _, err := algebra.Invoke(withText, bp, br); err != nil {
		t.Fatal(err)
	}
	if len(br.batches) != 0 {
		t.Fatalf("active BP was batched: %v", br.batches)
	}
	if br.single.Load() != int64(withText.Len()) {
		t.Fatalf("per-tuple invocations = %d, want %d", br.single.Load(), withText.Len())
	}
}

// TestInvokeBatchErrorAborts: the first per-item error in input order aborts
// the operator, matching the sequential path's FAIL semantics.
func TestInvokeBatchErrorAborts(t *testing.T) {
	boom := errors.New("item 2 failed")
	r := sensorRelation(4)
	bp, _ := r.Schema().FindBP("getTemperature", "")
	inv := &failingBatchInvoker{failIdx: 2, err: boom}
	if _, err := algebra.Invoke(r, bp, inv); !errors.Is(err, boom) {
		t.Fatalf("batch item error not propagated: %v", err)
	}
}

type failingBatchInvoker struct {
	failIdx int
	err     error
}

func (fi *failingBatchInvoker) MaxBatch() int    { return 64 }
func (fi *failingBatchInvoker) MaxParallel() int { return 1 }

func (fi *failingBatchInvoker) Invoke(_ schema.BindingPattern, _ string, _ value.Tuple) ([]value.Tuple, error) {
	return []value.Tuple{{value.NewReal(1)}}, nil
}

func (fi *failingBatchInvoker) InvokeBatch(_ schema.BindingPattern, refs []string, _ []value.Tuple) []algebra.BatchResult {
	out := make([]algebra.BatchResult, len(refs))
	for i := range out {
		if i == fi.failIdx {
			out[i] = algebra.BatchResult{Err: fi.err}
		} else {
			out[i] = algebra.BatchResult{Rows: []value.Tuple{{value.NewReal(1)}}}
		}
	}
	return out
}
