// Package algebra implements the Serena algebra (Gripay et al., EDBT 2010,
// Section 3): X-Relations and the set, relational and realization operators
// of Table 3. Operators are pure functions from X-Relations to X-Relations;
// side effects (service invocations) are abstracted behind the Invoker
// interface so that the query layer can record action sets (Definition 8)
// and memoize passive invocations.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"serena/internal/schema"
	"serena/internal/value"
)

// XRelation is an extended relation (Definition 3): a finite *set* of tuples
// over the real schema of an extended relation schema. The tuple slice is
// kept deduplicated and is treated as immutable by all operators.
type XRelation struct {
	sch    *schema.Extended
	tuples []value.Tuple
	keys   map[string]bool
}

// New builds an X-Relation over the given schema, validating and
// deduplicating the tuples (set semantics). Tuples are checked against the
// real schema and coerced where natural (Int→Real, String→Service).
func New(sch *schema.Extended, tuples []value.Tuple) (*XRelation, error) {
	if sch == nil {
		return nil, fmt.Errorf("algebra: nil schema")
	}
	r := &XRelation{sch: sch, keys: make(map[string]bool, len(tuples))}
	for i, t := range tuples {
		c, err := sch.RealRel().Conforms(t)
		if err != nil {
			return nil, fmt.Errorf("algebra: %s: tuple %d: %w", sch.Name(), i, err)
		}
		r.add(c)
	}
	return r, nil
}

// MustNew is New panicking on error, for fixtures and tests.
func MustNew(sch *schema.Extended, tuples []value.Tuple) *XRelation {
	r, err := New(sch, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Empty returns an empty X-Relation over the schema.
func Empty(sch *schema.Extended) *XRelation {
	return &XRelation{sch: sch, keys: make(map[string]bool)}
}

// FromKeyed builds an X-Relation from an already-deduplicated key → tuple
// map whose tuples are known to conform to the schema (they came out of
// operators over this schema). It skips per-tuple conformance and reuses
// the map's keys, so materializing a maintained result is O(n) map copies
// with no re-validation. Tuple order is unspecified (set semantics).
func FromKeyed(sch *schema.Extended, m map[string]value.Tuple) *XRelation {
	r := &XRelation{
		sch:    sch,
		tuples: make([]value.Tuple, 0, len(m)),
		keys:   make(map[string]bool, len(m)),
	}
	for k, t := range m {
		r.keys[k] = true
		r.tuples = append(r.tuples, t)
	}
	return r
}

// add inserts a conformed tuple, keeping set semantics.
func (r *XRelation) add(t value.Tuple) {
	k := t.Key()
	if r.keys[k] {
		return
	}
	r.keys[k] = true
	r.tuples = append(r.tuples, t)
}

// Schema returns the extended relation schema.
func (r *XRelation) Schema() *schema.Extended { return r.sch }

// Len returns the cardinality of the relation.
func (r *XRelation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in insertion order; callers must not mutate.
func (r *XRelation) Tuples() []value.Tuple { return r.tuples }

// Contains reports membership of a tuple (after conformance; raw equality of
// keys).
func (r *XRelation) Contains(t value.Tuple) bool { return r.keys[t.Key()] }

// Sorted returns the tuples in deterministic lexicographic order.
func (r *XRelation) Sorted() []value.Tuple {
	out := make([]value.Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// EqualContents reports whether two X-Relations hold the same tuple set.
// It does not compare schemas; use Schema().Equal for that.
func (r *XRelation) EqualContents(o *XRelation) bool {
	if r.Len() != o.Len() {
		return false
	}
	for k := range r.keys {
		if !o.keys[k] {
			return false
		}
	}
	return true
}

// Table renders the relation in the paper's tabular style, with '*' in
// virtual attribute columns (which hold no values).
func (r *XRelation) Table() string {
	attrs := r.sch.Attrs()
	widths := make([]int, len(attrs))
	header := make([]string, len(attrs))
	for i, a := range attrs {
		header[i] = a.Name
		widths[i] = len(a.Name)
	}
	rows := make([][]string, 0, len(r.tuples))
	for _, t := range r.Sorted() {
		row := make([]string, len(attrs))
		for i, a := range attrs {
			if a.Virtual {
				row[i] = "*"
			} else {
				row[i] = t[r.sch.RealIndex(a.Name)].String()
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// String summarizes the relation.
func (r *XRelation) String() string {
	name := r.sch.Name()
	if name == "" {
		name = "<derived>"
	}
	return fmt.Sprintf("%s: %d tuple(s) over %v", name, r.Len(), r.sch.Names())
}
