package algebra

import (
	"fmt"
	"math"
	"sort"

	"serena/internal/schema"
	"serena/internal/value"
)

// This file implements grouping/aggregation as an EXTENSION to the Serena
// algebra. The paper does not define aggregation operators, but its
// motivating example (Section 1.2) poses "compute a mean temperature for a
// given location" queries; this operator provides them in the obvious
// relational way. The result is a plain relation: grouping keys plus
// aggregate columns, all real, with no binding patterns (aggregation
// destroys the per-tuple service references binding patterns rely on).

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Supported aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Mean
	Min
	Max
)

var aggNames = map[AggFunc]string{
	Count: "count", Sum: "sum", Mean: "mean", Min: "min", Max: "max",
}

// String returns the SAL spelling.
func (f AggFunc) String() string { return aggNames[f] }

// AggFuncFromString parses an aggregate function name.
func AggFuncFromString(s string) (AggFunc, bool) {
	for f, n := range aggNames {
		if n == s {
			return f, true
		}
	}
	return 0, false
}

// AggSpec is one aggregate column: Func applied to Attr, exposed under As.
// Count ignores Attr (use "*" or empty).
type AggSpec struct {
	Func AggFunc
	Attr string
	As   string
}

// String renders "func(attr) as name".
func (a AggSpec) String() string {
	attr := a.Attr
	if a.Func == Count && attr == "" {
		attr = "*"
	}
	return fmt.Sprintf("%s(%s) as %s", a.Func, attr, a.As)
}

// AggregateSchema derives the result schema: groupBy attributes (which
// must be real) followed by one column per aggregate (INTEGER for count,
// REAL for sum/mean/min/max over numerics; min/max keep the input type for
// strings).
func AggregateSchema(r *schema.Extended, groupBy []string, aggs []AggSpec) (*schema.Extended, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("algebra: aggregation needs at least one aggregate")
	}
	var attrs []schema.ExtAttr
	seen := map[string]bool{}
	for _, g := range groupBy {
		if !r.Has(g) {
			return nil, fmt.Errorf("algebra: unknown grouping attribute %q", g)
		}
		if !r.IsReal(g) {
			return nil, fmt.Errorf("algebra: grouping attribute %q must be real (virtual attributes have no value)", g)
		}
		if seen[g] {
			return nil, fmt.Errorf("algebra: duplicate grouping attribute %q", g)
		}
		seen[g] = true
		t, _ := r.TypeOf(g)
		attrs = append(attrs, schema.ExtAttr{Attribute: schema.Attribute{Name: g, Type: t}})
	}
	for _, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("algebra: aggregate %s needs an output name", a)
		}
		if seen[a.As] {
			return nil, fmt.Errorf("algebra: duplicate output attribute %q", a.As)
		}
		seen[a.As] = true
		outType := value.Real
		switch a.Func {
		case Count:
			outType = value.Int
		case Sum, Mean:
			if err := requireNumeric(r, a); err != nil {
				return nil, err
			}
		case Min, Max:
			t, err := inputType(r, a)
			if err != nil {
				return nil, err
			}
			if !t.Numeric() {
				if t != value.String && t != value.Service {
					return nil, fmt.Errorf("algebra: %s needs numeric or textual input, %q is %s", a.Func, a.Attr, t)
				}
				outType = t
			}
		}
		attrs = append(attrs, schema.ExtAttr{Attribute: schema.Attribute{Name: a.As, Type: outType}})
	}
	return schema.NewExtended("", attrs, nil)
}

func inputType(r *schema.Extended, a AggSpec) (value.Kind, error) {
	if !r.Has(a.Attr) {
		return 0, fmt.Errorf("algebra: unknown aggregate input %q", a.Attr)
	}
	if !r.IsReal(a.Attr) {
		return 0, fmt.Errorf("algebra: aggregate input %q must be real", a.Attr)
	}
	t, _ := r.TypeOf(a.Attr)
	return t, nil
}

func requireNumeric(r *schema.Extended, a AggSpec) error {
	t, err := inputType(r, a)
	if err != nil {
		return err
	}
	if !t.Numeric() {
		return fmt.Errorf("algebra: %s needs a numeric input, %q is %s", a.Func, a.Attr, t)
	}
	return nil
}

// Aggregate groups r by the given real attributes and computes the
// aggregates per group. NULL inputs are skipped (count(*) still counts the
// tuple); groups whose aggregate has no non-NULL input yield NULL.
func Aggregate(r *XRelation, groupBy []string, aggs []AggSpec) (*XRelation, error) {
	outSch, err := AggregateSchema(r.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	keyIdx, err := r.Schema().RealIndexes(groupBy)
	if err != nil {
		return nil, err
	}
	aggIdx, err := resolveAggIdx(r.Schema(), aggs)
	if err != nil {
		return nil, err
	}

	type group struct {
		key     value.Tuple
		members []value.Tuple
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range r.Tuples() {
		key := t.Project(keyIdx)
		k := key.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, t)
	}
	sort.Strings(order)
	out := Empty(outSch)
	for _, k := range order {
		g := groups[k]
		// Accumulate in key-sorted member order: floating-point sums depend
		// on accumulation order, and the delta evaluator re-accumulates each
		// dirty group in this order, so both evaluators must agree on it for
		// bit-identical results (Definition 9 equivalence).
		sort.Slice(g.members, func(i, j int) bool { return g.members[i].Key() < g.members[j].Key() })
		out.add(accumulateGroup(g.key, g.members, aggs, aggIdx))
	}
	return out, nil
}

// resolveAggIdx maps each aggregate's input attribute to its real
// coordinate (-1 for count(*), which reads no attribute).
func resolveAggIdx(sch *schema.Extended, aggs []AggSpec) ([]int, error) {
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == Count && a.Attr == "" {
			aggIdx[i] = -1
			continue
		}
		j := sch.RealIndex(a.Attr)
		if j < 0 {
			return nil, fmt.Errorf("algebra: unknown aggregate input %q", a.Attr)
		}
		aggIdx[i] = j
	}
	return aggIdx, nil
}

// accumulateGroup folds one group's member tuples (in the caller-chosen
// order — both evaluators use key-sorted order) into its result row.
func accumulateGroup(key value.Tuple, members []value.Tuple, aggs []AggSpec, aggIdx []int) value.Tuple {
	g := &aggAcc{
		key:     key,
		nonNull: make([]int64, len(aggs)),
		sum:     make([]float64, len(aggs)),
		min:     make([]value.Value, len(aggs)),
		max:     make([]value.Value, len(aggs)),
	}
	for _, t := range members {
		g.count++
		for i := range aggs {
			if aggIdx[i] < 0 {
				continue
			}
			v := t[aggIdx[i]]
			if v.IsNull() {
				continue
			}
			g.nonNull[i]++
			if f, ok := v.AsFloat(); ok {
				g.sum[i] += f
			}
			if g.nonNull[i] == 1 {
				g.min[i], g.max[i] = v, v
			} else {
				if value.Less(v, g.min[i]) {
					g.min[i] = v
				}
				if value.Less(g.max[i], v) {
					g.max[i] = v
				}
			}
		}
	}
	row := make(value.Tuple, 0, len(key)+len(aggs))
	row = append(row, g.key...)
	for i, a := range aggs {
		row = append(row, aggValue(a, g, i))
	}
	return row
}

// aggAcc accumulates one group's state.
type aggAcc struct {
	key     value.Tuple
	count   int64
	nonNull []int64
	sum     []float64
	min     []value.Value
	max     []value.Value
}

func aggValue(a AggSpec, g *aggAcc, i int) value.Value {
	switch a.Func {
	case Count:
		if a.Attr == "" {
			return value.NewInt(g.count)
		}
		return value.NewInt(g.nonNull[i])
	case Sum:
		if g.nonNull[i] == 0 {
			return value.NewNull()
		}
		return value.NewReal(g.sum[i])
	case Mean:
		if g.nonNull[i] == 0 {
			return value.NewNull()
		}
		return value.NewReal(round6(g.sum[i] / float64(g.nonNull[i])))
	case Min:
		if g.nonNull[i] == 0 {
			return value.NewNull()
		}
		return coerceAgg(g.min[i])
	case Max:
		if g.nonNull[i] == 0 {
			return value.NewNull()
		}
		return coerceAgg(g.max[i])
	}
	return value.NewNull()
}

// coerceAgg lifts numeric min/max to REAL (the declared output type);
// textual values pass through.
func coerceAgg(v value.Value) value.Value {
	if f, ok := v.AsFloat(); ok && v.Kind() != value.Bool {
		return value.NewReal(f)
	}
	return v
}

func round6(f float64) float64 { return math.Round(f*1e6) / 1e6 }
