package algebra_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

func readingsRelation(t *testing.T) *algebra.XRelation {
	t.Helper()
	return algebra.MustNew(paperenv.TemperaturesSchema(), []value.Tuple{
		{value.NewService("sensor01"), value.NewString("corridor"), value.NewReal(19)},
		{value.NewService("sensor06"), value.NewString("office"), value.NewReal(21)},
		{value.NewService("sensor07"), value.NewString("office"), value.NewReal(23)},
		{value.NewService("sensor22"), value.NewString("roof"), value.NewReal(15)},
	})
}

func TestAggregateMeanByLocation(t *testing.T) {
	// The paper's Section 1.2 motivating query: mean temperature per
	// location.
	r := readingsRelation(t)
	out, err := algebra.Aggregate(r, []string{"location"},
		[]algebra.AggSpec{{Func: algebra.Mean, Attr: "temperature", As: "avgtemp"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	sch := out.Schema()
	if got := sch.Names(); len(got) != 2 || got[0] != "location" || got[1] != "avgtemp" {
		t.Fatalf("schema = %v", got)
	}
	if len(sch.BindingPatterns()) != 0 || sch.RealArity() != 2 {
		t.Fatal("aggregate output must be a plain relation")
	}
	want := map[string]float64{"corridor": 19, "office": 22, "roof": 15}
	li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
	for _, tu := range out.Tuples() {
		if tu[ai].Real() != want[tu[li].Str()] {
			t.Fatalf("mean(%s) = %v, want %v", tu[li].Str(), tu[ai], want[tu[li].Str()])
		}
	}
}

func TestAggregateAllFunctions(t *testing.T) {
	r := readingsRelation(t)
	out, err := algebra.Aggregate(r, nil, []algebra.AggSpec{
		{Func: algebra.Count, Attr: "", As: "n"},
		{Func: algebra.Sum, Attr: "temperature", As: "total"},
		{Func: algebra.Mean, Attr: "temperature", As: "avg"},
		{Func: algebra.Min, Attr: "temperature", As: "lo"},
		{Func: algebra.Max, Attr: "temperature", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("global aggregation should yield one row, got %d", out.Len())
	}
	row := out.Tuples()[0]
	if row[0].Int() != 4 || row[1].Real() != 78 || row[2].Real() != 19.5 ||
		row[3].Real() != 15 || row[4].Real() != 23 {
		t.Fatalf("row = %v", row)
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	r := readingsRelation(t)
	out, err := algebra.Aggregate(r, nil, []algebra.AggSpec{
		{Func: algebra.Min, Attr: "location", As: "first"},
		{Func: algebra.Max, Attr: "location", As: "last"},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := out.Tuples()[0]
	if row[0].Str() != "corridor" || row[1].Str() != "roof" {
		t.Fatalf("min/max strings = %v", row)
	}
	if k, _ := out.Schema().TypeOf("first"); k != value.String {
		t.Fatal("textual min keeps its type")
	}
}

func TestAggregateNullHandling(t *testing.T) {
	sch := schema.MustExtended("m", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "g", Type: value.String}},
		{Attribute: schema.Attribute{Name: "x", Type: value.Real}},
	}, nil)
	r := algebra.MustNew(sch, []value.Tuple{
		{value.NewString("a"), value.NewReal(10)},
		{value.NewString("a"), value.NewNull()},
		{value.NewString("b"), value.NewNull()},
	})
	out, err := algebra.Aggregate(r, []string{"g"}, []algebra.AggSpec{
		{Func: algebra.Count, Attr: "", As: "rows"},
		{Func: algebra.Count, Attr: "x", As: "vals"},
		{Func: algebra.Mean, Attr: "x", As: "avg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	byG := map[string]value.Tuple{}
	for _, tu := range out.Tuples() {
		byG[tu[0].Str()] = tu
	}
	a, b := byG["a"], byG["b"]
	if a[1].Int() != 2 || a[2].Int() != 1 || a[3].Real() != 10 {
		t.Fatalf("group a = %v", a)
	}
	if b[1].Int() != 1 || b[2].Int() != 0 || !b[3].IsNull() {
		t.Fatalf("group b = %v (NULL-only group must aggregate to NULL)", b)
	}
}

func TestAggregateValidation(t *testing.T) {
	r := readingsRelation(t)
	cases := []struct {
		name    string
		groupBy []string
		aggs    []algebra.AggSpec
	}{
		{"no aggregates", []string{"location"}, nil},
		{"unknown group attr", []string{"ghost"}, []algebra.AggSpec{{Func: algebra.Count, As: "n"}}},
		{"unknown agg attr", nil, []algebra.AggSpec{{Func: algebra.Sum, Attr: "ghost", As: "s"}}},
		{"non-numeric sum", nil, []algebra.AggSpec{{Func: algebra.Sum, Attr: "location", As: "s"}}},
		{"missing output name", nil, []algebra.AggSpec{{Func: algebra.Count}}},
		{"duplicate output", []string{"location"}, []algebra.AggSpec{{Func: algebra.Count, As: "location"}}},
		{"duplicate group", []string{"location", "location"}, []algebra.AggSpec{{Func: algebra.Count, As: "n"}}},
	}
	for _, c := range cases {
		if _, err := algebra.Aggregate(r, c.groupBy, c.aggs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Virtual grouping attribute rejected.
	sensors := paperenv.Sensors()
	if _, err := algebra.Aggregate(sensors, []string{"temperature"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}}); err == nil {
		t.Error("virtual grouping attribute accepted")
	}
	if _, err := algebra.Aggregate(sensors, nil,
		[]algebra.AggSpec{{Func: algebra.Mean, Attr: "temperature", As: "m"}}); err == nil {
		t.Error("virtual aggregate input accepted")
	}
}

func TestAggregateDeterministicOrder(t *testing.T) {
	r := readingsRelation(t)
	a, _ := algebra.Aggregate(r, []string{"location"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	b, _ := algebra.Aggregate(r, []string{"location"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	for i := range a.Tuples() {
		if !a.Tuples()[i].Equal(b.Tuples()[i]) {
			t.Fatal("aggregation order not deterministic")
		}
	}
}

func TestAggFuncParsing(t *testing.T) {
	for _, n := range []string{"count", "sum", "mean", "min", "max"} {
		f, ok := algebra.AggFuncFromString(n)
		if !ok || f.String() != n {
			t.Errorf("AggFuncFromString(%q) broken", n)
		}
	}
	if _, ok := algebra.AggFuncFromString("median"); ok {
		t.Error("unknown aggregate accepted")
	}
}
