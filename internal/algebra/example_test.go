package algebra_test

import (
	"fmt"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

// ExampleSelect filters the paper's contacts relation (Table 3b: selection
// formulas range over real attributes only).
func ExampleSelect() {
	contacts := paperenv.Contacts()
	notCarla := algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla")))
	out, _ := algebra.Select(contacts, notCarla)
	for _, t := range out.Sorted() {
		fmt.Println(t[0])
	}
	// Output:
	// "Francois"
	// "Nicolas"
}

// ExampleInvoke realizes the virtual temperature attribute by invoking the
// getTemperature binding pattern per tuple (Table 3f). The Invoker here is
// a stub; in a running system the query evaluation context performs real
// service invocations.
func ExampleInvoke() {
	sensors := paperenv.Sensors()
	bp, _ := sensors.Schema().FindBP("getTemperature", "")
	stub := algebra.InvokerFunc(func(_ schema.BindingPattern, ref string, _ value.Tuple) ([]value.Tuple, error) {
		return []value.Tuple{{value.NewReal(20)}}, nil
	})
	out, _ := algebra.Invoke(sensors, bp, stub)
	fmt.Println(out.Schema().IsReal("temperature"), out.Len())
	// Output: true 4
}

// ExampleAggregate computes the Section 1.2 mean temperature per location
// over materialized readings.
func ExampleAggregate() {
	readings := algebra.MustNew(paperenv.TemperaturesSchema(), []value.Tuple{
		{value.NewService("sensor06"), value.NewString("office"), value.NewReal(21)},
		{value.NewService("sensor07"), value.NewString("office"), value.NewReal(23)},
	})
	out, _ := algebra.Aggregate(readings, []string{"location"},
		[]algebra.AggSpec{{Func: algebra.Mean, Attr: "temperature", As: "avgtemp"}})
	fmt.Println(out.Tuples()[0])
	// Output: ("office", 22)
}
