package algebra_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

// genRelation is a quick.Generator producing random X-Relations over the
// sensors schema (service ref, location, virtual temperature).
type genRelation struct{ rel *algebra.XRelation }

// Generate implements quick.Generator.
func (genRelation) Generate(rng *rand.Rand, size int) reflect.Value {
	locations := []string{"office", "corridor", "roof", "lab", "hall"}
	refs := []string{"s01", "s02", "s03", "s04", "s05", "s06", "s07", "s08"}
	n := rng.Intn(size%16 + 4)
	rows := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, value.Tuple{
			value.NewService(refs[rng.Intn(len(refs))]),
			value.NewString(locations[rng.Intn(len(locations))]),
		})
	}
	return reflect.ValueOf(genRelation{algebra.MustNew(paperenv.SensorsSchema(), rows)})
}

var _ quick.Generator = genRelation{}

// TestQuickPartitionInvariant: for every operator output, realSchema and
// virtualSchema partition schema(R) (Definition 2), and tuples have exactly
// realArity coordinates (Definition 3).
func TestQuickPartitionInvariant(t *testing.T) {
	check := func(r *algebra.XRelation) bool {
		sch := r.Schema()
		if len(sch.RealNames())+len(sch.VirtualNames()) != sch.Arity() {
			return false
		}
		for _, n := range sch.RealNames() {
			if sch.IsVirtual(n) {
				return false
			}
		}
		for _, n := range sch.VirtualNames() {
			if sch.IsReal(n) {
				return false
			}
		}
		for _, tu := range r.Tuples() {
			if len(tu) != sch.RealArity() {
				return false
			}
		}
		return true
	}
	f := func(g genRelation) bool {
		r := g.rel
		if !check(r) {
			return false
		}
		p, err := algebra.Project(r, []string{"sensor", "temperature"})
		if err != nil || !check(p) {
			return false
		}
		s, err := algebra.Select(r, algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString("office"))))
		if err != nil || !check(s) {
			return false
		}
		a, err := algebra.AssignConst(r, "temperature", value.NewReal(20))
		if err != nil || !check(a) {
			return false
		}
		rn, err := algebra.Rename(r, "location", "place")
		if err != nil || !check(rn) {
			return false
		}
		j, err := algebra.NaturalJoin(r, paperenv.Surveillance())
		if err != nil || !check(j) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSetOperatorLaws: union/intersect/diff satisfy the usual set
// algebra identities on arbitrary relation pairs over the same schema.
func TestQuickSetOperatorLaws(t *testing.T) {
	f := func(ga, gb genRelation) bool {
		a, b := ga.rel, gb.rel
		ab, err1 := algebra.Union(a, b)
		ba, err2 := algebra.Union(b, a)
		if err1 != nil || err2 != nil || !ab.EqualContents(ba) {
			return false // commutativity
		}
		ia, err1 := algebra.Intersect(a, b)
		ib, err2 := algebra.Intersect(b, a)
		if err1 != nil || err2 != nil || !ia.EqualContents(ib) {
			return false
		}
		// a − b ⊆ a, disjoint from b; (a−b) ∪ (a∩b) = a.
		d, err := algebra.Diff(a, b)
		if err != nil {
			return false
		}
		for _, tu := range d.Tuples() {
			if !a.Contains(tu) || b.Contains(tu) {
				return false
			}
		}
		rebuilt, err := algebra.Union(d, ia)
		if err != nil || !rebuilt.EqualContents(a) {
			return false
		}
		// Idempotence.
		aa, _ := algebra.Union(a, a)
		return aa.EqualContents(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectionLaws: σ_F∧G = σ_F(σ_G) = σ_G(σ_F) ⊆ r, and selections
// commute with projection that keeps the formula's attributes.
func TestQuickSelectionLaws(t *testing.T) {
	fOffice := algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString("office")))
	fRef := algebra.Compare(algebra.Attr("sensor"), algebra.Ne, algebra.Const(value.NewService("s01")))
	f := func(g genRelation) bool {
		r := g.rel
		fg, err := algebra.Select(r, algebra.NewAnd(fOffice, fRef))
		if err != nil {
			return false
		}
		gf1, _ := algebra.Select(r, fRef)
		gf1, _ = algebra.Select(gf1, fOffice)
		gf2, _ := algebra.Select(r, fOffice)
		gf2, _ = algebra.Select(gf2, fRef)
		if !fg.EqualContents(gf1) || !fg.EqualContents(gf2) {
			return false
		}
		for _, tu := range fg.Tuples() {
			if !r.Contains(tu) {
				return false
			}
		}
		// σ then π vs π then σ (projection keeps location and sensor).
		pa, err := algebra.Project(fg, []string{"sensor", "location"})
		if err != nil {
			return false
		}
		pr, err := algebra.Project(r, []string{"sensor", "location"})
		if err != nil {
			return false
		}
		pb, err := algebra.Select(pr, algebra.NewAnd(fOffice, fRef))
		if err != nil {
			return false
		}
		return pa.EqualContents(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinLaws: natural join is commutative on tuple contents (modulo
// attribute order) and r ⋈ r = r.
func TestQuickJoinLaws(t *testing.T) {
	f := func(g genRelation) bool {
		r := g.rel
		self, err := algebra.NaturalJoin(r, r)
		if err != nil || !self.EqualContents(r) {
			return false
		}
		ab, err1 := algebra.NaturalJoin(r, paperenv.Surveillance())
		ba, err2 := algebra.NaturalJoin(paperenv.Surveillance(), r)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab.Len() != ba.Len() {
			return false
		}
		// Same contents modulo attribute order (projection preserves the
		// source schema's ordering, so compare by named coordinates).
		key := func(r *algebra.XRelation, tu value.Tuple) string {
			idx, err := r.Schema().RealIndexes([]string{"sensor", "location", "name"})
			if err != nil {
				return "?"
			}
			return tu.Project(idx).Key()
		}
		seen := map[string]bool{}
		for _, tu := range ab.Tuples() {
			seen[key(ab, tu)] = true
		}
		for _, tu := range ba.Tuples() {
			if !seen[key(ba, tu)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRenameRoundTrip: ρ_{B→A}(ρ_{A→B}(r)) = r including schema.
func TestQuickRenameRoundTrip(t *testing.T) {
	f := func(g genRelation) bool {
		r := g.rel
		fwd, err := algebra.Rename(r, "location", "place")
		if err != nil {
			return false
		}
		back, err := algebra.Rename(fwd, "place", "location")
		if err != nil {
			return false
		}
		return back.EqualContents(r) && back.Schema().Equal(r.Schema())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAssignThenProjectDropRestores: assigning a virtual attribute and
// then projecting it away yields the original real contents.
func TestQuickAssignThenProjectDrop(t *testing.T) {
	f := func(g genRelation) bool {
		r := g.rel
		a, err := algebra.AssignConst(r, "temperature", value.NewReal(21))
		if err != nil {
			return false
		}
		back, err := algebra.Project(a, []string{"sensor", "location"})
		if err != nil {
			return false
		}
		orig, err := algebra.Project(r, []string{"sensor", "location"})
		if err != nil {
			return false
		}
		return back.EqualContents(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAggregateCountConsistency: the counts of a grouped count(*)
// always sum to the relation's cardinality.
func TestQuickAggregateCountConsistency(t *testing.T) {
	f := func(g genRelation) bool {
		r := g.rel
		agg, err := algebra.Aggregate(r, []string{"location"},
			[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
		if err != nil {
			return false
		}
		var total int64
		ni := agg.Schema().RealIndex("n")
		for _, tu := range agg.Tuples() {
			total += tu[ni].Int()
		}
		return total == int64(r.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInvokeFanout: with a one-row-per-invocation stub, β preserves
// cardinality and realizes exactly the output schema.
func TestQuickInvokeFanout(t *testing.T) {
	stub := algebra.InvokerFunc(func(bp schema.BindingPattern, ref string, in value.Tuple) ([]value.Tuple, error) {
		return []value.Tuple{{value.NewReal(float64(len(ref)))}}, nil
	})
	f := func(g genRelation) bool {
		r := g.rel
		bp, err := r.Schema().FindBP("getTemperature", "")
		if err != nil {
			return false
		}
		out, err := algebra.Invoke(r, bp, stub)
		if err != nil {
			return false
		}
		// Distinct (sensor, location) pairs stay distinct and gain one
		// temperature each.
		return out.Len() == r.Len() && out.Schema().IsReal("temperature")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
