package algebra

import (
	"fmt"
	"sync"
	"sync/atomic"

	"serena/internal/obs"
	"serena/internal/schema"
	"serena/internal/value"
)

// Operator cardinality metrics, recorded once per operator evaluation (not
// per tuple) so always-on instrumentation stays off the per-row path.
var (
	obsSelectCalls = obs.Default.Counter("algebra.select.calls")
	obsSelectIn    = obs.Default.Counter("algebra.select.rows_in")
	obsSelectOut   = obs.Default.Counter("algebra.select.rows_out")
	obsJoinCalls   = obs.Default.Counter("algebra.join.calls")
	obsJoinIn      = obs.Default.Counter("algebra.join.rows_in")
	obsJoinOut     = obs.Default.Counter("algebra.join.rows_out")
	obsAssignCalls = obs.Default.Counter("algebra.assign.calls")
	obsAssignRows  = obs.Default.Counter("algebra.assign.rows")
	obsInvokeOps   = obs.Default.Counter("algebra.invoke.calls")
	obsInvokeJobs  = obs.Default.Counter("algebra.invoke.jobs")
	obsBatchOps    = obs.Default.Counter("algebra.invoke.batched_calls")
)

// Invoker abstracts the invocation of a binding pattern on a service for
// one input tuple (the paper's invoke_ψ of Definition 1, as used by the
// invocation operator of Table 3f). Implementations handle memoization of
// passive prototypes, action-set recording for active ones, and the actual
// local or remote call.
type Invoker interface {
	Invoke(bp schema.BindingPattern, ref string, input value.Tuple) ([]value.Tuple, error)
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(bp schema.BindingPattern, ref string, input value.Tuple) ([]value.Tuple, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(bp schema.BindingPattern, ref string, input value.Tuple) ([]value.Tuple, error) {
	return f(bp, ref, input)
}

// ---------------------------------------------------------------------------
// Set operators (Section 3.1.1): defined over two X-Relations with the same
// extended schema; the result keeps that schema.

func requireSameSchema(op string, r1, r2 *XRelation) error {
	if !r1.Schema().Equal(r2.Schema()) {
		return fmt.Errorf("algebra: %s requires identical extended schemas (%s vs %s)",
			op, r1.Schema().Name(), r2.Schema().Name())
	}
	return nil
}

// Union computes r1 ∪ r2.
func Union(r1, r2 *XRelation) (*XRelation, error) {
	if err := requireSameSchema("union", r1, r2); err != nil {
		return nil, err
	}
	out := Empty(r1.Schema())
	for _, t := range r1.Tuples() {
		out.add(t)
	}
	for _, t := range r2.Tuples() {
		out.add(t)
	}
	return out, nil
}

// Intersect computes r1 ∩ r2.
func Intersect(r1, r2 *XRelation) (*XRelation, error) {
	if err := requireSameSchema("intersect", r1, r2); err != nil {
		return nil, err
	}
	out := Empty(r1.Schema())
	for _, t := range r1.Tuples() {
		if r2.Contains(t) {
			out.add(t)
		}
	}
	return out, nil
}

// Diff computes r1 − r2.
func Diff(r1, r2 *XRelation) (*XRelation, error) {
	if err := requireSameSchema("difference", r1, r2); err != nil {
		return nil, err
	}
	out := Empty(r1.Schema())
	for _, t := range r1.Tuples() {
		if !r2.Contains(t) {
			out.add(t)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Relational operators (Section 3.1.2, Table 3 a–d).

// Project computes π_Y(r) (Table 3a): the schema shrinks to Y (binding
// patterns that lose their service, input or output attributes are dropped)
// and tuples are projected onto the real part of Y.
func Project(r *XRelation, names []string) (*XRelation, error) {
	outSch, err := schema.ProjectSchema(r.Schema(), names)
	if err != nil {
		return nil, err
	}
	idx, err := r.Schema().RealIndexes(outSch.RealNames())
	if err != nil {
		return nil, err
	}
	out := Empty(outSch)
	for _, t := range r.Tuples() {
		out.add(t.Project(idx))
	}
	return out, nil
}

// Select computes σ_F(r) (Table 3b): the schema is unchanged and F may only
// reference real attributes.
func Select(r *XRelation, f Formula) (*XRelation, error) {
	if err := f.Validate(r.Schema()); err != nil {
		return nil, err
	}
	out := Empty(r.Schema())
	for _, t := range r.Tuples() {
		if f.Eval(r.Schema(), t) {
			out.add(t)
		}
	}
	obsSelectCalls.Inc()
	obsSelectIn.Add(int64(r.Len()))
	obsSelectOut.Add(int64(out.Len()))
	return out, nil
}

// Rename computes ρ_{A→B}(r) (Table 3c): tuples are unchanged (the real
// layout keeps its coordinates), only the schema is relabeled and binding
// patterns re-checked.
func Rename(r *XRelation, oldName, newName string) (*XRelation, error) {
	outSch, err := schema.RenameSchema(r.Schema(), oldName, newName)
	if err != nil {
		return nil, err
	}
	out := Empty(outSch)
	for _, t := range r.Tuples() {
		out.add(t)
	}
	return out, nil
}

// joinPlan is the precomputed physical layout of a natural join: the output
// schema, each side's projection onto the shared real join attributes, and
// the per-coordinate source of the result tuple. Deriving it once lets the
// one-shot operator and the delta operator share identical tuple assembly.
type joinPlan struct {
	out        *schema.Extended
	idx1, idx2 []int
	steps      []joinStep
}

type joinStep struct {
	fromR1 bool
	pos    int
}

func buildJoinPlan(s1, s2 *schema.Extended) (*joinPlan, error) {
	out, err := schema.JoinSchema(s1, s2)
	if err != nil {
		return nil, err
	}
	joinAttrs := schema.SharedRealJoinAttrs(s1, s2)
	idx1, err := s1.RealIndexes(joinAttrs)
	if err != nil {
		return nil, err
	}
	idx2, err := s2.RealIndexes(joinAttrs)
	if err != nil {
		return nil, err
	}
	// Result tuple construction: for every real attribute of the output
	// schema take the value from r1 when it is real there, else from r2.
	steps := make([]joinStep, 0, out.RealArity())
	for _, name := range out.RealNames() {
		if s1.IsReal(name) {
			steps = append(steps, joinStep{true, s1.RealIndex(name)})
		} else {
			steps = append(steps, joinStep{false, s2.RealIndex(name)})
		}
	}
	return &joinPlan{out: out, idx1: idx1, idx2: idx2, steps: steps}, nil
}

func (p *joinPlan) combine(t1, t2 value.Tuple) value.Tuple {
	nt := make(value.Tuple, len(p.steps))
	for i, s := range p.steps {
		if s.fromR1 {
			nt[i] = t1[s.pos]
		} else {
			nt[i] = t2[s.pos]
		}
	}
	return nt
}

// NaturalJoin computes r1 ⋈ r2 (Table 3d). Only attributes real in BOTH
// operands imply a join predicate; when none exists the tuple-level result
// is a Cartesian product. Attributes real in one operand and virtual in the
// other are implicitly realized (their value comes from the real side).
func NaturalJoin(r1, r2 *XRelation) (*XRelation, error) {
	plan, err := buildJoinPlan(r1.Schema(), r2.Schema())
	if err != nil {
		return nil, err
	}

	// Hash join on the shared real attributes.
	buckets := make(map[string][]value.Tuple, r2.Len())
	for _, t2 := range r2.Tuples() {
		k := t2.Project(plan.idx2).Key()
		buckets[k] = append(buckets[k], t2)
	}
	out := Empty(plan.out)
	for _, t1 := range r1.Tuples() {
		k := t1.Project(plan.idx1).Key()
		for _, t2 := range buckets[k] {
			out.add(plan.combine(t1, t2))
		}
	}
	obsJoinCalls.Inc()
	obsJoinIn.Add(int64(r1.Len() + r2.Len()))
	obsJoinOut.Add(int64(out.Len()))
	return out, nil
}

// ---------------------------------------------------------------------------
// Realization operators (Section 3.1.3, Table 3 e–f).

// assignConstGen derives the α_{attr:=v} output schema and the per-tuple
// generator for the realized coordinate, shared by the one-shot and delta
// operators.
func assignConstGen(in *schema.Extended, attr string, v value.Value) (*schema.Extended, func(value.Tuple) value.Value, error) {
	outSch, err := schema.AssignSchema(in, attr, "")
	if err != nil {
		return nil, nil, err
	}
	want, _ := outSch.TypeOf(attr)
	cv, ok := value.Coerce(v, want)
	if !ok {
		return nil, nil, fmt.Errorf("algebra: assignment %s := %s: constant type %s does not match attribute type %s",
			attr, v, v.Kind(), want)
	}
	return outSch, func(value.Tuple) value.Value { return cv }, nil
}

// assignAttrGen derives the α_{attr:=src} output schema and generator.
func assignAttrGen(in *schema.Extended, attr, src string) (*schema.Extended, func(value.Tuple) value.Value, error) {
	outSch, err := schema.AssignSchema(in, attr, src)
	if err != nil {
		return nil, nil, err
	}
	want, _ := outSch.TypeOf(attr)
	srcIdx := in.RealIndex(src)
	return outSch, func(t value.Tuple) value.Value {
		v, ok := value.Coerce(t[srcIdx], want)
		if !ok {
			return value.NewNull() // unreachable: AssignSchema checked types
		}
		return v
	}, nil
}

// AssignConst computes α_{A:=a}(r) (Table 3e, constant form): the virtual
// attribute A becomes real and every tuple gains the constant a at A's
// coordinate. The constant must have (or coerce to) A's declared type.
func AssignConst(r *XRelation, attr string, v value.Value) (*XRelation, error) {
	outSch, gen, err := assignConstGen(r.Schema(), attr, v)
	if err != nil {
		return nil, err
	}
	return realize(r, outSch, gen), nil
}

// AssignAttr computes α_{A:=B}(r) (Table 3e, attribute form): A becomes
// real with, per tuple, the value of the real attribute B.
func AssignAttr(r *XRelation, attr, src string) (*XRelation, error) {
	outSch, gen, err := assignAttrGen(r.Schema(), attr, src)
	if err != nil {
		return nil, err
	}
	return realize(r, outSch, gen), nil
}

// realize rebuilds tuples for a schema where exactly the named attributes
// changed from virtual to real, pulling new coordinates from gen.
func realize(r *XRelation, outSch *schema.Extended, gen func(value.Tuple) value.Value) *XRelation {
	obsAssignCalls.Inc()
	obsAssignRows.Add(int64(r.Len()))
	plan := buildRealizePlan(r.Schema(), outSch)
	out := Empty(outSch)
	for _, t := range r.Tuples() {
		out.add(realizeTuple(t, plan, gen))
	}
	return out
}

// realizeTuple assembles one output tuple from an input tuple and the
// realize plan, generating newly realized coordinates with gen.
func realizeTuple(t value.Tuple, plan []realizeStep, gen func(value.Tuple) value.Value) value.Tuple {
	nt := make(value.Tuple, len(plan))
	for i, p := range plan {
		if p.old >= 0 {
			nt[i] = t[p.old]
		} else {
			nt[i] = gen(t)
		}
	}
	return nt
}

type realizeStep struct {
	name string
	old  int // coordinate in the input tuple, or -1 for newly realized
}

func buildRealizePlan(in, out *schema.Extended) []realizeStep {
	plan := make([]realizeStep, 0, out.RealArity())
	for _, name := range out.RealNames() {
		plan = append(plan, realizeStep{name: name, old: in.RealIndex(name)})
	}
	return plan
}

// InvokePlan is the precomputed physical layout of an invocation operator
// β_bp over a fixed operand schema: the output schema, the coordinates of
// the service reference and the prototype's input attributes, and the
// assembly plan mapping (input tuple, prototype output row) pairs to output
// tuples. Deriving it once per plan lets the one-shot operator and the
// continuous executor's delta operator share identical tuple assembly.
type InvokePlan struct {
	OutSch *schema.Extended
	SvcIdx int   // coordinate of bp's service attribute in the input tuple
	InIdx  []int // coordinates of the prototype's input attributes
	plan   []realizeStep
	outPos []int // per plan step: position in the prototype output row, or -1
}

// NewInvokePlan derives the invocation layout for bp over the operand
// schema.
func NewInvokePlan(in *schema.Extended, bp schema.BindingPattern) (*InvokePlan, error) {
	outSch, err := schema.InvokeSchema(in, bp)
	if err != nil {
		return nil, err
	}
	inIdx, err := in.RealIndexes(bp.Proto.Input.Names())
	if err != nil {
		return nil, err
	}
	outNames := bp.Proto.Output
	plan := buildRealizePlan(in, outSch)
	// Positions of realized attributes within the prototype output tuple.
	outPos := make([]int, len(plan))
	for i, p := range plan {
		if p.old >= 0 {
			outPos[i] = -1
		} else {
			outPos[i] = outNames.Index(p.name)
		}
	}
	return &InvokePlan{
		OutSch: outSch,
		SvcIdx: in.RealIndex(bp.ServiceAttr),
		InIdx:  inIdx,
		plan:   plan,
		outPos: outPos,
	}, nil
}

// Realize replicates the input tuple once per prototype output row, each
// copy gaining the realized output attributes.
func (p *InvokePlan) Realize(in value.Tuple, rows []value.Tuple) []value.Tuple {
	if len(rows) == 0 {
		return nil
	}
	out := make([]value.Tuple, len(rows))
	for r, row := range rows {
		nt := make(value.Tuple, len(p.plan))
		for i, step := range p.plan {
			if step.old >= 0 {
				nt[i] = in[step.old]
			} else {
				nt[i] = row[p.outPos[i]]
			}
		}
		out[r] = nt
	}
	return out
}

// Invoke computes β_bp(r) (Table 3f): every input tuple triggers one
// invocation of bp's prototype on the service its service attribute
// references; the input tuple is replicated once per output tuple, gaining
// the realized output attributes. Tuples whose service reference is NULL
// contribute no output (there is no service to call). Invocation errors
// abort the operator — error policy (skip/fail) belongs to the caller's
// Invoker, which may substitute empty results.
func Invoke(r *XRelation, bp schema.BindingPattern, inv Invoker) (*XRelation, error) {
	ip, err := NewInvokePlan(r.Schema(), bp)
	if err != nil {
		return nil, err
	}
	svcIdx, inIdx := ip.SvcIdx, ip.InIdx

	// Collect the invocation work list first (skipping NULL references),
	// then run it — sequentially, or concurrently when the Invoker allows
	// (Section 5.1: invocations are handled asynchronously; Section 3.2:
	// order has no impact at a given instant). Results are assembled in
	// input order either way, so the output is deterministic.
	type job struct {
		tuple value.Tuple
		ref   string
		input value.Tuple
	}
	jobs := make([]job, 0, r.Len())
	for _, t := range r.Tuples() {
		refVal := t[svcIdx]
		if refVal.IsNull() {
			continue
		}
		ref, ok := refVal.AsString()
		if !ok {
			return nil, fmt.Errorf("algebra: invoke %s: service attribute %q holds non-reference value %s",
				bp.ID(), bp.ServiceAttr, refVal)
		}
		jobs = append(jobs, job{tuple: t, ref: ref, input: t.Project(inIdx)})
	}
	obsInvokeOps.Inc()
	obsInvokeJobs.Add(int64(len(jobs)))

	results := make([][]value.Tuple, len(jobs))
	workers := 1
	if pi, ok := inv.(ParallelInvoker); ok {
		if n := pi.MaxParallel(); n > workers {
			workers = n
		}
	}
	// Batch dispatch: a BatchInvoker takes the whole work list at once —
	// the planner behind it dedupes identical (proto, ref, input) pairs,
	// coalesces concurrent duplicates and groups remote calls per service
	// into multi-invocation wire frames. Restricted to PASSIVE binding
	// patterns: an active β job is one action of the Definition 8 action
	// set, and batching must not change how those fire (active jobs keep
	// the per-tuple pool below).
	if bi, ok := inv.(BatchInvoker); ok && !bp.Active() && len(jobs) > 1 && bi.MaxBatch() > 1 {
		refs := make([]string, len(jobs))
		inputs := make([]value.Tuple, len(jobs))
		for i, j := range jobs {
			refs[i] = j.ref
			inputs[i] = j.input
		}
		obsBatchOps.Inc()
		brs := bi.InvokeBatch(bp, refs, inputs)
		for i, br := range brs {
			if br.Err != nil { // first error in input order aborts
				return nil, fmt.Errorf("algebra: invoke %s: %w", bp.ID(), br.Err)
			}
			results[i] = br.Rows
		}
	} else if workers > 1 && len(jobs) > 1 {
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var (
			wg       sync.WaitGroup
			next     int64 = -1
			failed   atomic.Bool
			errMu    sync.Mutex
			firstErr error
			errIdx   = len(jobs)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					// A fatal error aborts the whole operator, so once one is
					// recorded no NEW invocation may fire: under FAIL semantics
					// every extra call is a side effect whose result is
					// discarded — it would silently grow the Definition 8
					// action set. Jobs already in flight on other workers run
					// to completion (they were scheduled before the failure).
					if failed.Load() {
						return
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(jobs) {
						return
					}
					rows, err := inv.Invoke(bp, jobs[i].ref, jobs[i].input)
					if err != nil {
						errMu.Lock()
						if i < errIdx { // keep the first error in input order
							errIdx, firstErr = i, err
						}
						errMu.Unlock()
						failed.Store(true)
						return
					}
					results[i] = rows
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("algebra: invoke %s: %w", bp.ID(), firstErr)
		}
	} else {
		for i, j := range jobs {
			rows, err := inv.Invoke(bp, j.ref, j.input)
			if err != nil {
				return nil, fmt.Errorf("algebra: invoke %s: %w", bp.ID(), err)
			}
			results[i] = rows
		}
	}

	out := Empty(ip.OutSch)
	for i, j := range jobs {
		for _, nt := range ip.Realize(j.tuple, results[i]) {
			out.add(nt)
		}
	}
	return out, nil
}

// ParallelInvoker is an optional Invoker extension: MaxParallel bounds how
// many invocations the invocation operator may run concurrently (values < 2
// keep the sequential path). Implementations must make Invoke safe for
// concurrent use.
type ParallelInvoker interface {
	Invoker
	MaxParallel() int
}

// BatchResult is one job's outcome from a batched dispatch: rows on
// success, or the error the invoker's policy decided to surface (absorbed
// failures come back as Err == nil with the policy's stand-in rows).
type BatchResult struct {
	Rows []value.Tuple
	Err  error
}

// BatchInvoker is an optional Invoker extension: InvokeBatch receives the
// invocation operator's whole work list for one PASSIVE binding pattern and
// returns positional results (out[i] belongs to (refs[i], inputs[i])).
// Implementations own deduplication, coalescing and transport batching;
// MaxBatch() < 2 disables the batch path (the per-tuple pool is used
// instead — the batching ablation).
type BatchInvoker interface {
	Invoker
	InvokeBatch(bp schema.BindingPattern, refs []string, inputs []value.Tuple) []BatchResult
	MaxBatch() int
}
