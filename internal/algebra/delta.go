package algebra

// This file implements the delta-aware (semi-naive) form of the Serena
// operators: instead of recomputing a full X-Relation per instant, each
// operator consumes its operand's change set — the tuples inserted into and
// deleted from the operand's instantaneous relation since the previous
// instant — and emits its own, maintaining just enough internal state
// (support counts, join hash indexes, aggregate accumulators) to do so in
// time proportional to |changes|, not |operand|.
//
// Delta operators are state machines over SET-level deltas: inputs and
// outputs are X-Relation (set semantics) change sets, normalized so no
// tuple appears in both Ins and Del of one Delta. Operators whose
// tuple-level mapping is not injective (projection, union, aggregation)
// keep support counts so a set-level deletion is emitted only when the
// LAST supporting input disappears.
//
// The continuous executor (internal/cq) compiles a registered plan into a
// tree of these operators plus its own time-aware sources (window, base,
// stream, β-invocation) — see internal/cq/delta.go. One-shot evaluation
// never uses them.

import (
	"fmt"
	"sort"

	"serena/internal/schema"
	"serena/internal/value"
)

// Delta is one instant's change set for an X-Relation: the tuples inserted
// into and deleted from its instantaneous relation since the previous
// instant. A normalized Delta never holds the same tuple in both halves.
type Delta struct {
	Ins []value.Tuple
	Del []value.Tuple
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool { return len(d.Ins) == 0 && len(d.Del) == 0 }

// Rows returns the total number of changed tuples.
func (d Delta) Rows() int { return len(d.Ins) + len(d.Del) }

// DeltaAcc nets per-tuple contributions within one instant: an insert and
// a delete of the same tuple cancel, so the emitted Delta is normalized.
// The emission order is unspecified — consumers are order-insensitive (set
// semantics; ordered consumers sort where they need to). It is exported
// for external delta operators (the continuous executor's sources and β).
type DeltaAcc struct {
	count map[string]int
	tuple map[string]value.Tuple
}

// NewDeltaAcc returns an empty accumulator.
func NewDeltaAcc() *DeltaAcc {
	return &DeltaAcc{count: map[string]int{}, tuple: map[string]value.Tuple{}}
}

// Add records one inserted tuple.
func (a *DeltaAcc) Add(t value.Tuple) { a.bump(t, 1) }

// Del records one deleted tuple.
func (a *DeltaAcc) Del(t value.Tuple) { a.bump(t, -1) }

func (a *DeltaAcc) bump(t value.Tuple, by int) {
	k := t.Key()
	a.count[k] += by
	if a.count[k] == 0 {
		delete(a.count, k)
		delete(a.tuple, k)
		return
	}
	a.tuple[k] = t
}

// Delta emits the netted change set.
func (a *DeltaAcc) Delta() Delta {
	var d Delta
	for k, c := range a.count {
		switch {
		case c > 0:
			d.Ins = append(d.Ins, a.tuple[k])
		case c < 0:
			d.Del = append(d.Del, a.tuple[k])
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// DeltaGate: the multiset → set boundary.

// DeltaGate converts raw multiset changes (tuples entering and leaving an
// XD-Relation's instantaneous multiset, or a window's content) into
// set-level deltas by support counting: an insert is emitted when a tuple's
// multiplicity rises from zero, a delete when it returns to zero. It is the
// leaf adapter between time-aware sources and the set-semantics operators.
type DeltaGate struct {
	count map[string]int
}

// NewDeltaGate returns an empty gate.
func NewDeltaGate() *DeltaGate { return &DeltaGate{count: map[string]int{}} }

// Reset clears the gate's multiset.
func (g *DeltaGate) Reset() { g.count = map[string]int{} }

// Apply feeds the instant's entering and leaving tuples through the gate
// and returns the set-level delta. Leaving a tuple that is not present is
// an inconsistency (the caller's state diverged from its source) and
// errors so the caller can rebuild.
func (g *DeltaGate) Apply(enter, leave []value.Tuple) (Delta, error) {
	acc := NewDeltaAcc()
	for _, t := range enter {
		k := t.Key()
		g.count[k]++
		if g.count[k] == 1 {
			acc.Add(t)
		}
	}
	for _, t := range leave {
		k := t.Key()
		c, ok := g.count[k]
		if !ok || c == 0 {
			return Delta{}, fmt.Errorf("algebra: delta gate underflow on %s", t)
		}
		if c == 1 {
			delete(g.count, k)
			acc.Del(t)
		} else {
			g.count[k] = c - 1
		}
	}
	return acc.Delta(), nil
}

// ---------------------------------------------------------------------------
// Stateless relational deltas: σ, ρ, α-assignment.

// DeltaSelect is the delta form of σ_F: the formula commutes with set
// difference, so inserts and deletes are filtered independently and no
// state is kept.
type DeltaSelect struct {
	sch *schema.Extended
	f   Formula
}

// NewDeltaSelect validates F against the operand schema and returns the
// delta operator.
func NewDeltaSelect(in *schema.Extended, f Formula) (*DeltaSelect, error) {
	if err := f.Validate(in); err != nil {
		return nil, err
	}
	return &DeltaSelect{sch: in, f: f}, nil
}

// Schema returns the (unchanged) output schema.
func (s *DeltaSelect) Schema() *schema.Extended { return s.sch }

// Reset implements the delta-operator contract (no state).
func (s *DeltaSelect) Reset() {}

// Apply filters the operand delta.
func (s *DeltaSelect) Apply(child Delta) (Delta, error) {
	var out Delta
	for _, t := range child.Ins {
		if s.f.Eval(s.sch, t) {
			out.Ins = append(out.Ins, t)
		}
	}
	for _, t := range child.Del {
		if s.f.Eval(s.sch, t) {
			out.Del = append(out.Del, t)
		}
	}
	return out, nil
}

// DeltaRename is the delta form of ρ: tuples are unchanged (only the schema
// relabels), so deltas pass through.
type DeltaRename struct {
	out *schema.Extended
}

// NewDeltaRename validates the renaming and returns the delta operator.
func NewDeltaRename(in *schema.Extended, oldName, newName string) (*DeltaRename, error) {
	out, err := schema.RenameSchema(in, oldName, newName)
	if err != nil {
		return nil, err
	}
	return &DeltaRename{out: out}, nil
}

// Schema returns the relabeled schema.
func (r *DeltaRename) Schema() *schema.Extended { return r.out }

// Reset implements the delta-operator contract (no state).
func (r *DeltaRename) Reset() {}

// Apply passes the operand delta through.
func (r *DeltaRename) Apply(child Delta) (Delta, error) { return child, nil }

// DeltaAssign is the delta form of α_{A:=a} / α_{A:=B}. The mapping from
// input to output tuple is injective (the input's real attributes are all
// preserved), so deltas transform tuple-wise with no support counting.
type DeltaAssign struct {
	out  *schema.Extended
	plan []realizeStep
	gen  func(value.Tuple) value.Value
}

// NewDeltaAssignConst builds the delta form of α_{attr := v}.
func NewDeltaAssignConst(in *schema.Extended, attr string, v value.Value) (*DeltaAssign, error) {
	out, gen, err := assignConstGen(in, attr, v)
	if err != nil {
		return nil, err
	}
	return &DeltaAssign{out: out, plan: buildRealizePlan(in, out), gen: gen}, nil
}

// NewDeltaAssignAttr builds the delta form of α_{attr := src}.
func NewDeltaAssignAttr(in *schema.Extended, attr, src string) (*DeltaAssign, error) {
	out, gen, err := assignAttrGen(in, attr, src)
	if err != nil {
		return nil, err
	}
	return &DeltaAssign{out: out, plan: buildRealizePlan(in, out), gen: gen}, nil
}

// Schema returns the output schema (attr realized).
func (a *DeltaAssign) Schema() *schema.Extended { return a.out }

// Reset implements the delta-operator contract (no state).
func (a *DeltaAssign) Reset() {}

// Apply transforms the operand delta tuple-wise.
func (a *DeltaAssign) Apply(child Delta) (Delta, error) {
	out := Delta{Ins: make([]value.Tuple, len(child.Ins)), Del: make([]value.Tuple, len(child.Del))}
	for i, t := range child.Ins {
		out.Ins[i] = realizeTuple(t, a.plan, a.gen)
	}
	for i, t := range child.Del {
		out.Del[i] = realizeTuple(t, a.plan, a.gen)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// DeltaProject: support-counted π.

// DeltaProject is the delta form of π_Y. Projection is not injective:
// several input tuples may project to one output tuple, so an output
// deletion is emitted only when its LAST supporting input disappears.
type DeltaProject struct {
	out     *schema.Extended
	idx     []int
	support map[string]int
}

// NewDeltaProject resolves the projection and returns the delta operator.
func NewDeltaProject(in *schema.Extended, names []string) (*DeltaProject, error) {
	out, err := schema.ProjectSchema(in, names)
	if err != nil {
		return nil, err
	}
	idx, err := in.RealIndexes(out.RealNames())
	if err != nil {
		return nil, err
	}
	return &DeltaProject{out: out, idx: idx, support: map[string]int{}}, nil
}

// Schema returns the projected schema.
func (p *DeltaProject) Schema() *schema.Extended { return p.out }

// Reset clears the support counts.
func (p *DeltaProject) Reset() { p.support = map[string]int{} }

// Apply projects the operand delta under support counting.
func (p *DeltaProject) Apply(child Delta) (Delta, error) {
	acc := NewDeltaAcc()
	for _, t := range child.Ins {
		pt := t.Project(p.idx)
		k := pt.Key()
		p.support[k]++
		if p.support[k] == 1 {
			acc.Add(pt)
		}
	}
	for _, t := range child.Del {
		pt := t.Project(p.idx)
		k := pt.Key()
		c, ok := p.support[k]
		if !ok || c == 0 {
			return Delta{}, fmt.Errorf("algebra: delta project underflow on %s", pt)
		}
		if c == 1 {
			delete(p.support, k)
			acc.Del(pt)
		} else {
			p.support[k] = c - 1
		}
	}
	return acc.Delta(), nil
}

// ---------------------------------------------------------------------------
// DeltaJoin: incremental ⋈ with per-side hash indexes.

// DeltaJoin is the delta form of the natural join. It maintains a hash
// index of each side's current tuples on the shared real join attributes;
// per instant it probes each side's delta against the other side's index,
// so the work is |ΔL|·fanout + |ΔR|·fanout instead of |L|+|R|.
type DeltaJoin struct {
	plan        *joinPlan
	left, right map[string]map[string]value.Tuple // join key → tuple key → tuple
}

// NewDeltaJoin derives the join plan for the two operand schemas and
// returns the delta operator.
func NewDeltaJoin(s1, s2 *schema.Extended) (*DeltaJoin, error) {
	plan, err := buildJoinPlan(s1, s2)
	if err != nil {
		return nil, err
	}
	return &DeltaJoin{
		plan:  plan,
		left:  map[string]map[string]value.Tuple{},
		right: map[string]map[string]value.Tuple{},
	}, nil
}

// Schema returns the joined schema.
func (j *DeltaJoin) Schema() *schema.Extended { return j.plan.out }

// Reset clears both hash indexes.
func (j *DeltaJoin) Reset() {
	j.left = map[string]map[string]value.Tuple{}
	j.right = map[string]map[string]value.Tuple{}
}

func indexAdd(idx map[string]map[string]value.Tuple, jk string, t value.Tuple) {
	b := idx[jk]
	if b == nil {
		b = map[string]value.Tuple{}
		idx[jk] = b
	}
	b[t.Key()] = t
}

func indexRemove(idx map[string]map[string]value.Tuple, jk string, t value.Tuple) error {
	b := idx[jk]
	k := t.Key()
	if _, ok := b[k]; !ok {
		return fmt.Errorf("algebra: delta join index underflow on %s", t)
	}
	delete(b, k)
	if len(b) == 0 {
		delete(idx, jk)
	}
	return nil
}

// Apply maintains the indexes and emits the joined delta. The left delta is
// applied first (probing the right side's PREVIOUS index), then the right
// delta (probing the left side's UPDATED index) — the standard asymmetric
// form that counts each changed pair exactly once; same-instant cross
// effects (e.g. left insert meeting a right delete) net out in the
// accumulator.
func (j *DeltaJoin) Apply(dl, dr Delta) (Delta, error) {
	acc := NewDeltaAcc()
	for _, t := range dl.Del {
		jk := t.Project(j.plan.idx1).Key()
		if err := indexRemove(j.left, jk, t); err != nil {
			return Delta{}, err
		}
		for _, r := range j.right[jk] {
			acc.Del(j.plan.combine(t, r))
		}
	}
	for _, t := range dl.Ins {
		jk := t.Project(j.plan.idx1).Key()
		indexAdd(j.left, jk, t)
		for _, r := range j.right[jk] {
			acc.Add(j.plan.combine(t, r))
		}
	}
	for _, t := range dr.Del {
		jk := t.Project(j.plan.idx2).Key()
		if err := indexRemove(j.right, jk, t); err != nil {
			return Delta{}, err
		}
		for _, l := range j.left[jk] {
			acc.Del(j.plan.combine(l, t))
		}
	}
	for _, t := range dr.Ins {
		jk := t.Project(j.plan.idx2).Key()
		indexAdd(j.right, jk, t)
		for _, l := range j.left[jk] {
			acc.Add(j.plan.combine(l, t))
		}
	}
	return acc.Delta(), nil
}

// ---------------------------------------------------------------------------
// DeltaSetOp: ∪, ∩, − with side-membership state.

// DeltaSetOp is the delta form of the three set operators. Union keeps a
// per-tuple support count (present in 1 or 2 sides); intersection and
// difference keep per-side membership sets and emit on the derived
// transitions.
type DeltaSetOp struct {
	kind  int // 0 union, 1 intersect, 2 diff — mirrors query.SetOpKind order
	sch   *schema.Extended
	left  map[string]value.Tuple
	right map[string]value.Tuple
}

// Set-operator kinds for NewDeltaSetOp (aligned with the one-shot
// operators: union, intersect, difference).
const (
	DeltaUnion = iota
	DeltaIntersect
	DeltaDiff
)

// NewDeltaSetOp checks the operand schemas and returns the delta operator.
func NewDeltaSetOp(kind int, s1, s2 *schema.Extended) (*DeltaSetOp, error) {
	if !s1.Equal(s2) {
		return nil, fmt.Errorf("algebra: set operator requires identical extended schemas (%s vs %s)",
			s1.Name(), s2.Name())
	}
	if kind < DeltaUnion || kind > DeltaDiff {
		return nil, fmt.Errorf("algebra: unknown set operator kind %d", kind)
	}
	return &DeltaSetOp{
		kind:  kind,
		sch:   s1,
		left:  map[string]value.Tuple{},
		right: map[string]value.Tuple{},
	}, nil
}

// Schema returns the (shared) operand schema.
func (s *DeltaSetOp) Schema() *schema.Extended { return s.sch }

// Reset clears the side-membership sets.
func (s *DeltaSetOp) Reset() {
	s.left = map[string]value.Tuple{}
	s.right = map[string]value.Tuple{}
}

// Apply maintains side membership and emits the set-operator delta. The
// left delta is applied first; each side's emission tests the other side's
// state at that point (previous for left, updated for right), which counts
// every output transition exactly once; cross effects net out in the
// accumulator.
func (s *DeltaSetOp) Apply(dl, dr Delta) (Delta, error) {
	acc := NewDeltaAcc()
	apply := func(side, other map[string]value.Tuple, d Delta, leftSide bool) error {
		for _, t := range d.Del {
			k := t.Key()
			if _, ok := side[k]; !ok {
				return fmt.Errorf("algebra: delta set-op underflow on %s", t)
			}
			delete(side, k)
			_, inOther := other[k]
			switch s.kind {
			case DeltaUnion:
				if !inOther {
					acc.Del(t)
				}
			case DeltaIntersect:
				if inOther {
					acc.Del(t)
				}
			case DeltaDiff:
				if leftSide && !inOther {
					acc.Del(t)
				} else if !leftSide && inOther {
					acc.Add(t)
				}
			}
		}
		for _, t := range d.Ins {
			k := t.Key()
			side[k] = t
			_, inOther := other[k]
			switch s.kind {
			case DeltaUnion:
				if !inOther {
					acc.Add(t)
				}
			case DeltaIntersect:
				if inOther {
					acc.Add(t)
				}
			case DeltaDiff:
				if leftSide && !inOther {
					acc.Add(t)
				} else if !leftSide && inOther {
					acc.Del(t)
				}
			}
		}
		return nil
	}
	if err := apply(s.left, s.right, dl, true); err != nil {
		return Delta{}, err
	}
	if err := apply(s.right, s.left, dr, false); err != nil {
		return Delta{}, err
	}
	return acc.Delta(), nil
}

// ---------------------------------------------------------------------------
// DeltaAggregate: per-group accumulators.

// DeltaAggregate is the delta form of grouping/aggregation. It keeps, per
// group, the set of member tuples and the group's last emitted result row;
// per instant only the groups whose membership changed are re-accumulated
// (O(|changed group|), not O(|operand|)) and emit a delete of the old row
// plus an insert of the new one when the row changed. Accumulation runs in
// key-sorted member order — the same order the one-shot operator uses — so
// floating-point results are bit-identical between the two evaluators.
type DeltaAggregate struct {
	out     *schema.Extended
	groupBy []string
	aggs    []AggSpec
	keyIdx  []int
	aggIdx  []int
	groups  map[string]*deltaGroup
}

type deltaGroup struct {
	key     value.Tuple
	members map[string]value.Tuple
	lastRow value.Tuple
}

// NewDeltaAggregate resolves the aggregation and returns the delta
// operator.
func NewDeltaAggregate(in *schema.Extended, groupBy []string, aggs []AggSpec) (*DeltaAggregate, error) {
	out, err := AggregateSchema(in, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	keyIdx, err := in.RealIndexes(groupBy)
	if err != nil {
		return nil, err
	}
	aggIdx, err := resolveAggIdx(in, aggs)
	if err != nil {
		return nil, err
	}
	return &DeltaAggregate{
		out: out, groupBy: groupBy, aggs: aggs,
		keyIdx: keyIdx, aggIdx: aggIdx,
		groups: map[string]*deltaGroup{},
	}, nil
}

// Schema returns the aggregate result schema.
func (a *DeltaAggregate) Schema() *schema.Extended { return a.out }

// Reset clears all group accumulators.
func (a *DeltaAggregate) Reset() { a.groups = map[string]*deltaGroup{} }

// Apply updates group membership from the operand delta and re-accumulates
// only the dirty groups.
func (a *DeltaAggregate) Apply(child Delta) (Delta, error) {
	dirty := map[string]bool{}
	for _, t := range child.Ins {
		key := t.Project(a.keyIdx)
		k := key.Key()
		g := a.groups[k]
		if g == nil {
			g = &deltaGroup{key: key, members: map[string]value.Tuple{}}
			a.groups[k] = g
		}
		g.members[t.Key()] = t
		dirty[k] = true
	}
	for _, t := range child.Del {
		k := t.Project(a.keyIdx).Key()
		g := a.groups[k]
		if g == nil {
			return Delta{}, fmt.Errorf("algebra: delta aggregate underflow on %s", t)
		}
		tk := t.Key()
		if _, ok := g.members[tk]; !ok {
			return Delta{}, fmt.Errorf("algebra: delta aggregate underflow on %s", t)
		}
		delete(g.members, tk)
		dirty[k] = true
	}
	acc := NewDeltaAcc()
	for k := range dirty {
		g := a.groups[k]
		if len(g.members) == 0 {
			if g.lastRow != nil {
				acc.Del(g.lastRow)
			}
			delete(a.groups, k)
			continue
		}
		members := make([]value.Tuple, 0, len(g.members))
		for _, m := range g.members {
			members = append(members, m)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Key() < members[j].Key() })
		row := accumulateGroup(g.key, members, a.aggs, a.aggIdx)
		if g.lastRow != nil {
			if g.lastRow.Key() == row.Key() {
				continue // group changed but its aggregate row did not
			}
			acc.Del(g.lastRow)
		}
		acc.Add(row)
		g.lastRow = row
	}
	return acc.Delta(), nil
}
