package algebra_test

import (
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

func TestNewValidatesAndDedups(t *testing.T) {
	sch := paperenv.ContactsSchema()
	dup := value.Tuple{value.NewString("Carla"), value.NewString("carla@elysee.fr"), value.NewService("email")}
	r, err := algebra.New(sch, []value.Tuple{dup, dup.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("set semantics violated: Len = %d", r.Len())
	}
	if !r.Contains(dup) {
		t.Fatal("Contains broken")
	}
	// Arity mismatch (tuples are over the REAL schema only, Def. 3).
	_, err = algebra.New(sch, []value.Tuple{{value.NewString("x")}})
	if err == nil {
		t.Fatal("tuple over full schema arity accepted")
	}
	// Type mismatch.
	_, err = algebra.New(sch, []value.Tuple{{value.NewInt(1), value.NewString("a"), value.NewService("email")}})
	if err == nil {
		t.Fatal("ill-typed tuple accepted")
	}
	if _, err := algebra.New(nil, nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestNewCoercesStringToServiceRef(t *testing.T) {
	sch := paperenv.ContactsSchema()
	r, err := algebra.New(sch, []value.Tuple{
		{value.NewString("Carla"), value.NewString("carla@elysee.fr"), value.NewString("email")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Tuples()[0][2]
	if got.Kind() != value.Service || got.ServiceRef() != "email" {
		t.Fatalf("messenger not coerced to SERVICE: %v (%s)", got, got.Kind())
	}
}

func TestEqualContents(t *testing.T) {
	a := paperenv.Contacts()
	b := paperenv.Contacts()
	if !a.EqualContents(b) {
		t.Fatal("identical relations differ")
	}
	c := algebra.MustNew(paperenv.ContactsSchema(), a.Tuples()[:2])
	if a.EqualContents(c) {
		t.Fatal("different cardinalities equal")
	}
	d := algebra.MustNew(paperenv.ContactsSchema(), []value.Tuple{
		a.Tuples()[0], a.Tuples()[1],
		{value.NewString("Z"), value.NewString("z@z"), value.NewService("email")},
	})
	if a.EqualContents(d) {
		t.Fatal("different contents equal")
	}
}

func TestSortedDeterministic(t *testing.T) {
	r := paperenv.Contacts()
	s1, s2 := r.Sorted(), r.Sorted()
	for i := range s1 {
		if !s1[i].Equal(s2[i]) {
			t.Fatal("Sorted not deterministic")
		}
	}
	if s1[0][0].Str() != "Carla" {
		t.Fatalf("expected Carla first, got %v", s1[0])
	}
}

func TestTableRendering(t *testing.T) {
	out := paperenv.Contacts().Table()
	for _, frag := range []string{"name", "text", "messenger", "Nicolas", "email", "*"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table() missing %q:\n%s", frag, out)
		}
	}
	// Virtual columns render '*' on every row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + separator + 3 tuples
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestEmptyAndString(t *testing.T) {
	e := algebra.Empty(paperenv.ContactsSchema())
	if e.Len() != 0 {
		t.Fatal("Empty not empty")
	}
	if !strings.Contains(e.String(), "contacts") {
		t.Fatalf("String() = %q", e.String())
	}
	derived, err := algebra.Project(paperenv.Contacts(), []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(derived.String(), "<derived>") {
		t.Fatalf("derived String() = %q", derived.String())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid tuples")
		}
	}()
	algebra.MustNew(paperenv.ContactsSchema(), []value.Tuple{{value.NewInt(3)}})
}

func TestXRelationOverPlainSchema(t *testing.T) {
	// Standard relations are a special case of X-Relations (Section 2.3).
	rel := schema.FromRel("nums", schema.MustRel(
		schema.Attribute{Name: "n", Type: value.Int}))
	r := algebra.MustNew(rel, []value.Tuple{{value.NewInt(1)}, {value.NewInt(2)}})
	if r.Len() != 2 || r.Schema().RealArity() != 1 {
		t.Fatal("plain relation lifting broken")
	}
}
