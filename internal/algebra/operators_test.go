package algebra_test

import (
	"errors"
	"fmt"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/schema"
	"serena/internal/value"
)

// recordingInvoker is a test Invoker that serves canned results and records
// every call.
type recordingInvoker struct {
	results map[string][]value.Tuple // key: proto|ref|inputKey
	calls   []string
	err     error
}

func (ri *recordingInvoker) key(proto, ref string, in value.Tuple) string {
	return proto + "|" + ref + "|" + in.Key()
}

func (ri *recordingInvoker) on(proto, ref string, in value.Tuple, rows ...value.Tuple) {
	if ri.results == nil {
		ri.results = map[string][]value.Tuple{}
	}
	ri.results[ri.key(proto, ref, in)] = rows
}

func (ri *recordingInvoker) Invoke(bp schema.BindingPattern, ref string, in value.Tuple) ([]value.Tuple, error) {
	ri.calls = append(ri.calls, ri.key(bp.Proto.Name, ref, in))
	if ri.err != nil {
		return nil, ri.err
	}
	return ri.results[ri.key(bp.Proto.Name, ref, in)], nil
}

func names(r *algebra.XRelation) []string { return r.Schema().Names() }

func TestSetOperators(t *testing.T) {
	sch := paperenv.ContactsSchema()
	all := paperenv.Contacts()
	two := algebra.MustNew(sch, all.Tuples()[:2])
	one := algebra.MustNew(sch, all.Tuples()[2:])

	u, err := algebra.Union(two, one)
	if err != nil || !u.EqualContents(all) {
		t.Fatalf("Union: %v %v", u, err)
	}
	i, err := algebra.Intersect(all, two)
	if err != nil || !i.EqualContents(two) {
		t.Fatalf("Intersect: %v %v", i, err)
	}
	d, err := algebra.Diff(all, two)
	if err != nil || !d.EqualContents(one) {
		t.Fatalf("Diff: %v %v", d, err)
	}
	// Schema mismatch (even same attrs, different BPs) is rejected.
	noBP := schema.MustExtended("contacts2", sch.Attrs(), nil)
	other := algebra.MustNew(noBP, all.Tuples())
	if _, err := algebra.Union(all, other); err == nil {
		t.Fatal("union across different extended schemas accepted")
	}
	if _, err := algebra.Intersect(all, other); err == nil {
		t.Fatal("intersect across different extended schemas accepted")
	}
	if _, err := algebra.Diff(all, other); err == nil {
		t.Fatal("diff across different extended schemas accepted")
	}
}

func TestUnionCommutesAndIdempotent(t *testing.T) {
	a := paperenv.Contacts()
	u1, _ := algebra.Union(a, a)
	if !u1.EqualContents(a) {
		t.Fatal("r ∪ r must equal r (set semantics)")
	}
	sch := paperenv.ContactsSchema()
	two := algebra.MustNew(sch, a.Tuples()[:2])
	ab, _ := algebra.Union(a, two)
	ba, _ := algebra.Union(two, a)
	if !ab.EqualContents(ba) {
		t.Fatal("union not commutative")
	}
}

func TestProjectTuplesAndDedup(t *testing.T) {
	// Projecting contacts onto messenger collapses the two email rows.
	r, err := algebra.Project(paperenv.Contacts(), []string{"messenger"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("projection should dedup to 2 tuples, got %d", r.Len())
	}
	if got := names(r); len(got) != 1 || got[0] != "messenger" {
		t.Fatalf("schema = %v", got)
	}
}

func TestProjectKeepsVirtualAttrs(t *testing.T) {
	r, err := algebra.Project(paperenv.Contacts(), []string{"name", "text"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().IsVirtual("text") || r.Schema().RealArity() != 1 {
		t.Fatal("virtual attribute must survive projection as virtual")
	}
	for _, tu := range r.Tuples() {
		if len(tu) != 1 {
			t.Fatalf("tuple should have only the real coordinate: %v", tu)
		}
	}
}

func TestSelect(t *testing.T) {
	f := algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla")))
	r, err := algebra.Select(paperenv.Contacts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Schema().Equal(paperenv.ContactsSchema()) {
		t.Fatal("selection must not change the schema")
	}
	bad := algebra.Compare(algebra.Attr("sent"), algebra.Eq, algebra.Const(value.NewBool(true)))
	if _, err := algebra.Select(paperenv.Contacts(), bad); err == nil {
		t.Fatal("selection on virtual attribute accepted")
	}
}

func TestRenameKeepsTuples(t *testing.T) {
	r, err := algebra.Rename(paperenv.Contacts(), "name", "who")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Has("who") || r.Schema().Has("name") {
		t.Fatal("rename did not relabel")
	}
	if r.Len() != 3 || r.Tuples()[0][0].Kind() != value.String {
		t.Fatal("tuples must be unchanged")
	}
	if _, err := algebra.Rename(paperenv.Contacts(), "ghost", "x"); err == nil {
		t.Fatal("bad rename accepted")
	}
}

func TestNaturalJoinSharedReal(t *testing.T) {
	// contacts ⋈ surveillance joins on the shared real attribute 'name'.
	j, err := algebra.NaturalJoin(paperenv.Contacts(), paperenv.Surveillance())
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("join Len = %d, want 3", j.Len())
	}
	sch := j.Schema()
	if !sch.Has("location") || !sch.IsReal("location") {
		t.Fatal("location must be joined in as real")
	}
	// Check one row: Carla ↦ office.
	found := false
	locIdx := sch.RealIndex("location")
	nameIdx := sch.RealIndex("name")
	for _, tu := range j.Tuples() {
		if tu[nameIdx].Str() == "Carla" && tu[locIdx].Str() == "office" {
			found = true
		}
	}
	if !found {
		t.Fatal("Carla/office row missing")
	}
	// Binding pattern survives (outputs still virtual).
	if len(sch.BindingPatterns()) != 1 {
		t.Fatal("sendMessage BP should survive the join")
	}
}

func TestNaturalJoinDanglingTuples(t *testing.T) {
	sv := algebra.MustNew(paperenv.SurveillanceSchema(), []value.Tuple{
		{value.NewString("Carla"), value.NewString("office")},
		{value.NewString("Ghost"), value.NewString("cellar")},
	})
	j, err := algebra.NaturalJoin(paperenv.Contacts(), sv)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("dangling tuples must not join, Len = %d", j.Len())
	}
}

func TestNaturalJoinCartesianWhenVirtualOnOneSide(t *testing.T) {
	// Schema sharing only attributes that are virtual on one side joins as a
	// Cartesian product (Table 3d).
	textProvider := schema.MustExtended("msgs", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "text", Type: value.String}},
	}, nil)
	msgs := algebra.MustNew(textProvider, []value.Tuple{
		{value.NewString("Hot!")},
		{value.NewString("Cold!")},
	})
	j, err := algebra.NaturalJoin(paperenv.Contacts(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 6 { // 3 contacts × 2 messages
		t.Fatalf("Cartesian Len = %d, want 6", j.Len())
	}
	if !j.Schema().IsReal("text") {
		t.Fatal("text must be implicitly realized by the join")
	}
	// Values must come from the real side.
	textIdx := j.Schema().RealIndex("text")
	seen := map[string]bool{}
	for _, tu := range j.Tuples() {
		seen[tu[textIdx].Str()] = true
	}
	if !seen["Hot!"] || !seen["Cold!"] {
		t.Fatalf("realized text values wrong: %v", seen)
	}
	// sendMessage BP survives: its output 'sent' is still virtual, and its
	// inputs are now all real.
	if len(j.Schema().BindingPatterns()) != 1 {
		t.Fatal("BP should survive implicit realization of an input")
	}
}

func TestNaturalJoinSameSchemaIsIntersectionLike(t *testing.T) {
	a := paperenv.Contacts()
	j, err := algebra.NaturalJoin(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !j.EqualContents(a) {
		t.Fatal("r ⋈ r must equal r")
	}
	if !j.Schema().Equal(a.Schema()) {
		t.Fatal("r ⋈ r must keep the schema")
	}
}

func TestAssignConstMiddleCoordinate(t *testing.T) {
	// contacts real layout: (name, address, messenger); realizing 'text'
	// (schema position 3 of 5) must insert at real coordinate 2.
	r, err := algebra.AssignConst(paperenv.Contacts(), "text", value.NewString("Bonjour!"))
	if err != nil {
		t.Fatal(err)
	}
	sch := r.Schema()
	if sch.RealIndex("text") != 2 || sch.RealIndex("messenger") != 3 {
		t.Fatalf("real coordinates wrong: text=%d messenger=%d",
			sch.RealIndex("text"), sch.RealIndex("messenger"))
	}
	for _, tu := range r.Tuples() {
		if tu[2].Str() != "Bonjour!" {
			t.Fatalf("constant not inserted: %v", tu)
		}
		if tu[3].Kind() != value.Service {
			t.Fatalf("messenger shifted wrongly: %v", tu)
		}
	}
	if len(sch.BindingPatterns()) != 1 {
		t.Fatal("sendMessage BP should survive (output 'sent' still virtual)")
	}
}

func TestAssignConstTypeChecking(t *testing.T) {
	if _, err := algebra.AssignConst(paperenv.Contacts(), "text", value.NewInt(3)); err == nil {
		t.Fatal("INTEGER into STRING attribute accepted")
	}
	// Int constant into REAL virtual attribute coerces.
	r, err := algebra.AssignConst(paperenv.Sensors(), "temperature", value.NewInt(20))
	if err != nil {
		t.Fatal(err)
	}
	idx := r.Schema().RealIndex("temperature")
	if r.Tuples()[0][idx].Kind() != value.Real {
		t.Fatal("Int constant should coerce to REAL")
	}
}

func TestAssignAttr(t *testing.T) {
	r, err := algebra.AssignAttr(paperenv.Contacts(), "text", "address")
	if err != nil {
		t.Fatal(err)
	}
	sch := r.Schema()
	ti, ai := sch.RealIndex("text"), sch.RealIndex("address")
	for _, tu := range r.Tuples() {
		if tu[ti].Str() != tu[ai].Str() {
			t.Fatalf("copy assignment wrong: %v", tu)
		}
	}
	if _, err := algebra.AssignAttr(paperenv.Contacts(), "text", "sent"); err == nil {
		t.Fatal("virtual source accepted")
	}
}

func TestAssignKillsBPWhoseOutputRealized(t *testing.T) {
	r, err := algebra.AssignConst(paperenv.Contacts(), "sent", value.NewBool(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schema().BindingPatterns()) != 0 {
		t.Fatal("assigning a BP output must eliminate the BP")
	}
}

func TestInvokeRealizesOutputs(t *testing.T) {
	sensors := paperenv.Sensors()
	bp, err := sensors.Schema().FindBP("getTemperature", "")
	if err != nil {
		t.Fatal(err)
	}
	ri := &recordingInvoker{}
	for i, ref := range []string{"sensor01", "sensor06", "sensor07", "sensor22"} {
		ri.on("getTemperature", ref, value.Tuple{}, value.Tuple{value.NewReal(20 + float64(i))})
	}
	r, err := algebra.Invoke(sensors, bp, ri)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	sch := r.Schema()
	if !sch.IsReal("temperature") || len(sch.BindingPatterns()) != 0 {
		t.Fatal("invocation must realize temperature and consume the BP")
	}
	ti := sch.RealIndex("temperature")
	si := sch.RealIndex("sensor")
	for _, tu := range r.Tuples() {
		if tu[si].ServiceRef() == "sensor01" && tu[ti].Real() != 20 {
			t.Fatalf("sensor01 temperature = %v", tu[ti])
		}
	}
	if len(ri.calls) != 4 {
		t.Fatalf("calls = %v", ri.calls)
	}
}

func TestInvokeDuplicatesInputPerOutputTuple(t *testing.T) {
	// An invocation returning 2 tuples duplicates the input tuple (Table 3f).
	sensors := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewService("multi"), value.NewString("lab")},
	})
	bp, _ := sensors.Schema().FindBP("getTemperature", "")
	ri := &recordingInvoker{}
	ri.on("getTemperature", "multi", value.Tuple{},
		value.Tuple{value.NewReal(1)}, value.Tuple{value.NewReal(2)})
	r, err := algebra.Invoke(sensors, bp, ri)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestInvokeEmptyResultDropsTuple(t *testing.T) {
	sensors := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewService("dead"), value.NewString("lab")},
		{value.NewService("ok"), value.NewString("lab")},
	})
	bp, _ := sensors.Schema().FindBP("getTemperature", "")
	ri := &recordingInvoker{}
	ri.on("getTemperature", "ok", value.Tuple{}, value.Tuple{value.NewReal(3)})
	// "dead" has no configured result → empty relation → no output tuples.
	r, err := algebra.Invoke(sensors, bp, ri)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestInvokeSkipsNullServiceRef(t *testing.T) {
	sensors := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewNull(), value.NewString("lab")},
	})
	bp, _ := sensors.Schema().FindBP("getTemperature", "")
	ri := &recordingInvoker{}
	r, err := algebra.Invoke(sensors, bp, ri)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || len(ri.calls) != 0 {
		t.Fatal("NULL service reference must be skipped without invocation")
	}
}

func TestInvokePropagatesErrors(t *testing.T) {
	boom := errors.New("network down")
	sensors := paperenv.Sensors()
	bp, _ := sensors.Schema().FindBP("getTemperature", "")
	ri := &recordingInvoker{err: boom}
	if _, err := algebra.Invoke(sensors, bp, ri); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestInvokeRequiresRealInputs(t *testing.T) {
	contacts := paperenv.Contacts()
	bp, _ := contacts.Schema().FindBP("sendMessage", "")
	// 'text' is virtual → precondition violated.
	if _, err := algebra.Invoke(contacts, bp, &recordingInvoker{}); err == nil {
		t.Fatal("invocation with virtual input accepted")
	}
}

func TestInvokeInputTupleUsesPrototypeOrder(t *testing.T) {
	// Prototype input order (address, text) differs from insertion order of
	// realization; the input tuple must follow the prototype schema.
	withText, err := algebra.AssignConst(paperenv.Contacts(), "text", value.NewString("Bonjour!"))
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := withText.Schema().FindBP("sendMessage", "")
	var captured value.Tuple
	inv := algebra.InvokerFunc(func(_ schema.BindingPattern, ref string, in value.Tuple) ([]value.Tuple, error) {
		captured = in
		return []value.Tuple{{value.NewBool(true)}}, nil
	})
	if _, err := algebra.Invoke(withText, bp, inv); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 2 || captured[0].Str() == "Bonjour!" {
		t.Fatalf("input tuple order wrong: %v (want (address, text))", captured)
	}
	if captured[1].Str() != "Bonjour!" {
		t.Fatalf("text missing from input tuple: %v", captured)
	}
}

func TestTwoStageInvocationCheckThenTake(t *testing.T) {
	// Q2 pattern: β_takePhoto(β_checkPhoto(cameras)) — the first invocation
	// realizes 'quality', enabling the second whose input needs it.
	cams := paperenv.Cameras()
	check, _ := cams.Schema().FindBP("checkPhoto", "")
	ri := &recordingInvoker{}
	for _, c := range []struct {
		ref, area string
		q         int64
	}{{"camera01", "corridor", 8}, {"camera02", "office", 7}, {"webcam07", "roof", 5}} {
		ri.on("checkPhoto", c.ref, value.Tuple{value.NewString(c.area)},
			value.Tuple{value.NewInt(c.q), value.NewReal(0.5)})
		ri.on("takePhoto", c.ref, value.Tuple{value.NewString(c.area), value.NewInt(c.q)},
			value.Tuple{value.NewBlob([]byte(c.ref))})
	}
	checked, err := algebra.Invoke(cams, check, ri)
	if err != nil {
		t.Fatal(err)
	}
	take, err := checked.Schema().FindBP("takePhoto", "")
	if err != nil {
		t.Fatal(err)
	}
	shot, err := algebra.Invoke(checked, take, ri)
	if err != nil {
		t.Fatal(err)
	}
	if shot.Len() != 3 || !shot.Schema().IsReal("photo") {
		t.Fatalf("two-stage invocation broken: %v", shot)
	}
	photos, err := algebra.Project(shot, []string{"photo"})
	if err != nil {
		t.Fatal(err)
	}
	if photos.Len() != 3 {
		t.Fatalf("photo projection Len = %d", photos.Len())
	}
}

func TestOperatorsDoNotMutateInputs(t *testing.T) {
	orig := paperenv.Contacts()
	before := fmt.Sprintf("%v", orig.Tuples())
	_, _ = algebra.Project(orig, []string{"name"})
	_, _ = algebra.Select(orig, algebra.True{})
	_, _ = algebra.Rename(orig, "name", "n2")
	_, _ = algebra.AssignConst(orig, "text", value.NewString("x"))
	_, _ = algebra.NaturalJoin(orig, paperenv.Surveillance())
	if after := fmt.Sprintf("%v", orig.Tuples()); after != before {
		t.Fatal("operators mutated their input relation")
	}
}
