package pems_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"serena/internal/cq"
	"serena/internal/pems"
)

// TestHealthEndpoint drives the full health surface through the PEMS layer:
// /debug/health JSON, the Prometheus exposition on /metrics, SAL queries
// over the sys$ relations, and the .health text rendering.
func TestHealthEndpoint(t *testing.T) {
	p, _, _, _ := newScenarioPEMS(t)
	defer p.Close()
	if _, err := p.EnableSelfTelemetry(cq.TelemetryOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("probe", "select[area = \"office\"](cameras)", false); err != nil {
		t.Fatal(err)
	}
	// SAL over a system relation: sys$ names lex as single identifiers.
	if _, err := p.RegisterQuery("deadman",
		`stream[insertion](select[state = "STALLED"](sys$streams))`, false); err != nil {
		t.Fatal(err)
	}
	if err := p.SetStreamCadence("temperatures", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	h := p.DebugHandler()

	get := func(path, accept string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("%s status %d", path, rec.Code)
		}
		return rec
	}

	// /debug/health: JSON report listing queries and the polled stream.
	rec := get("/debug/health", "")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/health content type %q", ct)
	}
	var rep pems.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/debug/health bad JSON: %v", err)
	}
	if !rep.Enabled {
		t.Fatal("/debug/health enabled = false with telemetry on")
	}
	queries := map[string]string{}
	for _, q := range rep.Queries {
		queries[q.Query] = q.State
	}
	if queries["probe"] == "" || queries["deadman"] == "" {
		t.Fatalf("/debug/health missing queries: %v", rep.Queries)
	}
	foundTemps := false
	for _, s := range rep.Streams {
		if s.Stream == "temperatures" {
			foundTemps = true
			if s.Cadence != 2 {
				t.Fatalf("cadence = %d, want 2", s.Cadence)
			}
		}
		if strings.HasPrefix(s.Stream, "sys$") {
			t.Fatalf("system relation %s leaked into the stream health list", s.Stream)
		}
	}
	if !foundTemps {
		t.Fatalf("/debug/health missing temperatures stream: %v", rep.Streams)
	}

	// /metrics with Prometheus negotiation: text exposition with our prefix.
	rec = get("/metrics?format=prometheus", "")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus format content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "serena_cq_ticks_total") {
		t.Fatalf("exposition missing serena_cq_ticks_total:\n%s", rec.Body.String())
	}
	rec = get("/metrics", "application/openmetrics-text")
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatal("Accept: application/openmetrics-text not honoured")
	}

	// .health text rendering.
	text := p.HealthReportText()
	for _, want := range []string{"health @ instant", "probe", "deadman", "temperatures", "cadence=2"} {
		if !strings.Contains(text, want) {
			t.Fatalf(".health output missing %q:\n%s", want, text)
		}
	}
}

// TestHealthEndpointDisabled: without telemetry the endpoint answers
// enabled:false (not 404) and the helpers error cleanly.
func TestHealthEndpointDisabled(t *testing.T) {
	p := pems.New()
	defer p.Close()
	rec := httptest.NewRecorder()
	p.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/health status %d", rec.Code)
	}
	var rep pems.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Enabled {
		t.Fatal("enabled = true with telemetry off")
	}
	if err := p.SetStreamCadence("x", 1); err == nil {
		t.Fatal("SetStreamCadence must error with telemetry off")
	}
	if !strings.Contains(p.HealthReportText(), "disabled") {
		t.Fatal("text report must say telemetry is disabled")
	}
	if p.Telemetry() != nil {
		t.Fatal("Telemetry() must be nil when disabled")
	}
}

// TestHealthDeadManOverWire is the in-process version of the e2e smoke: a
// polled stream dies (its only backing service is unregistered), and the
// registered dead-man query over sys$streams emits the STALLED tuple.
func TestHealthDeadManOverWire(t *testing.T) {
	p, sensors, _, _ := newScenarioPEMS(t)
	defer p.Close()
	if _, err := p.EnableSelfTelemetry(cq.TelemetryOptions{}); err != nil {
		t.Fatal(err)
	}
	deadman, err := p.RegisterQuery("deadman",
		`stream[insertion](select[state = "STALLED"](sys$streams))`, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetStreamCadence("temperatures", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Tick(); err != nil {
			t.Fatal(err)
		}
		if deadman.LastResult().Len() != 0 {
			t.Fatalf("dead-man fired with the feed alive (instant %d)", i)
		}
	}
	// Kill the feed: no sensors left → the poll source inserts nothing.
	for ref := range sensors {
		if err := p.Registry().Unregister(ref); err != nil {
			t.Fatal(err)
		}
	}
	fired := false
	for i := 0; i < 5; i++ {
		if _, err := p.Tick(); err != nil {
			t.Fatal(err)
		}
		if deadman.LastResult().Len() > 0 {
			tu := deadman.LastResult().Tuples()[0]
			if tu[0].Str() != "temperatures" || tu[1].Str() != "STALLED" {
				t.Fatalf("dead-man tuple = %v", tu)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("dead-man query never fired after the feed died")
	}
	// /debug/health agrees.
	rep := p.HealthReport()
	ok := false
	for _, s := range rep.Streams {
		if s.Stream == "temperatures" && s.State == "STALLED" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("health report does not show the stalled stream: %+v", rep.Streams)
	}
}
