package pems

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"

	"serena/internal/catalog"
	"serena/internal/cq"
	"serena/internal/ddl"
	"serena/internal/resilience"
	"serena/internal/sal"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
	"serena/internal/wal"
)

// Durability glue: EnableDurability opens a write-ahead log under a data
// directory and wires it into the continuous executor; Recover restores the
// latest checkpoint and replays the log tail, after which the environment
// resumes exactly where it stopped — windows, delta-caches and the action
// set (Definition 8) included. Active invocations recorded as fired are
// never fired again; passive ones are recomputed freely (Section 3.2:
// services are deterministic at a given instant, so recomputation at the
// logged instant is sound).

// EnableDurability opens (or creates) the WAL + checkpoint store in dir and
// attaches it to this PEMS. Call it before Recover, which must run before
// the first tick. The embedder re-registers its code services, poll
// streams and discovery relations between the two calls — checkpoints only
// carry DDL-declared schema; live implementations are the embedder's to
// restore.
func (p *PEMS) EnableDurability(dir string, opts wal.Options) error {
	m, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.wal != nil {
		p.mu.Unlock()
		m.Close()
		return fmt.Errorf("pems: durability already enabled (%s)", p.wal.Dir())
	}
	p.wal = m
	p.mu.Unlock()
	p.exec.SetDurability(m)
	p.exec.OnCheckpoint(func(st cq.CheckpointState) error {
		return m.Checkpoint(p.catalog.DumpSchema(), st)
	})
	return nil
}

// WAL returns the durability manager, or nil when durability is off.
func (p *PEMS) WAL() *wal.Manager { return p.walManager() }

func (p *PEMS) walManager() *wal.Manager {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wal
}

// Recover restores the last checkpoint (if any), replays the WAL tail, and
// writes a fresh post-recovery checkpoint so the next restart does not
// replay the same log again. It must be called exactly once, after
// EnableDurability and the embedder's code registrations, before the first
// tick.
func (p *PEMS) Recover() (wal.Info, error) {
	m := p.walManager()
	if m == nil {
		return wal.Info{}, fmt.Errorf("pems: durability not enabled")
	}
	info, err := m.Recover(wal.RecoveryHooks{
		Restore:    p.restoreCheckpoint,
		ApplyDDL:   p.applyRecoveredDDL,
		ApplyEvent: p.applyRecoveredEvent,
		ReplayTick: func(at service.Instant, ledger cq.ReplayLedger) error {
			return p.exec.ReplayTick(at, ledger, nil)
		},
		SeedActive: p.exec.SeedActive,
		AdvanceTo:  p.exec.AdvanceTo,
	})
	if err != nil {
		return info, err
	}
	p.resyncDiscoveryCurrent()
	p.resyncFeedSince()
	if !info.Fresh {
		// Checkpointing right away bounds the divergence window: orphan
		// intents and replayed ticks become part of the snapshot instead of
		// being re-derived from the log on every restart.
		if cerr := p.Checkpoint(); cerr != nil {
			slog.Warn("pems: post-recovery checkpoint failed", "err", cerr.Error())
		}
	}
	return info, nil
}

// Checkpoint forces a durable snapshot now. Tick-count-driven checkpoints
// (wal.Options.CheckpointEvery) continue independently.
func (p *PEMS) Checkpoint() error {
	m := p.walManager()
	if m == nil {
		return fmt.Errorf("pems: durability not enabled")
	}
	return m.Checkpoint(p.catalog.DumpSchema(), p.exec.Snapshot())
}

// restoreCheckpoint applies a checkpoint: catalog DDL first (prototypes,
// scripted services, relations), then query re-registration from the logged
// post-optimization plans, then the executor state snapshot.
func (p *PEMS) restoreCheckpoint(catalogDDL string, st *cq.CheckpointState) error {
	stmts, err := ddl.Parse(catalogDDL)
	if err != nil {
		return fmt.Errorf("pems: checkpoint catalog: %w", err)
	}
	for i, s := range stmts {
		if err := p.restoreStatement(s, st.At); err != nil {
			return fmt.Errorf("pems: checkpoint catalog statement %d: %w", i+1, err)
		}
	}
	for _, qs := range st.Queries {
		if err := p.recoverQuery(qs.Name, qs.Source, qs.OnError, qs.Into, qs.Retain); err != nil {
			return fmt.Errorf("pems: checkpoint query %s: %w", qs.Name, err)
		}
	}
	return p.exec.Restore(*st)
}

// restoreStatement executes one recovered DDL statement, tolerating
// declarations the embedder already made in code before Recover: an
// identical prototype redeclaration is a no-op, a live service
// implementation wins over the checkpoint's stub, and an existing relation
// keeps its (restored or embedder-built) instance.
func (p *PEMS) restoreStatement(s ddl.Statement, at service.Instant) error {
	switch t := s.(type) {
	case *ddl.CreateService:
		err := p.catalog.Execute(s, at)
		if errors.Is(err, service.ErrDuplicate) {
			return nil
		}
		return err
	case *ddl.CreateRelation:
		if _, err := p.catalog.Relation(t.Name); err == nil {
			return nil
		}
		return p.catalog.Execute(s, at)
	default:
		return p.catalog.Execute(s, at)
	}
}

// recoverQuery re-registers one continuous query from its logged source.
// The source is the POST-optimization plan, registered verbatim (no second
// optimizer pass): node indices in the invocation cache and the active-β
// ledger are positions in that exact plan.
func (p *PEMS) recoverQuery(name, source, onError, into string, retain service.Instant) error {
	n, err := sal.Parse(source)
	if err != nil {
		return fmt.Errorf("parsing logged plan: %w", err)
	}
	if _, err := p.exec.RegisterWith(name, n, cq.RegisterOptions{Into: into, Retain: retain}); err != nil {
		return err
	}
	if onError != "" {
		pol, err := resilience.ParsePolicy(onError)
		if err != nil {
			return err
		}
		if err := p.exec.SetDegradation(name, pol); err != nil {
			return err
		}
	}
	return nil
}

// applyRecoveredDDL replays one logged DDL statement.
func (p *PEMS) applyRecoveredDDL(text string, at service.Instant) error {
	stmts, err := ddl.Parse(text)
	if err != nil {
		return fmt.Errorf("pems: recovered ddl: %w", err)
	}
	for _, s := range stmts {
		switch t := s.(type) {
		case *ddl.RegisterQuery:
			if err := p.recoverQuery(t.Name, t.Source, t.OnError, t.Into, service.Instant(t.Retain)); err != nil {
				return fmt.Errorf("pems: recovered query %s: %w", t.Name, err)
			}
		case *ddl.UnregisterQuery:
			if err := p.exec.Unregister(t.Name); err != nil {
				return err
			}
		default:
			if err := p.restoreStatement(s, at); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyRecoveredEvent re-applies one logged base-relation event.
// Events logged for materialized derived relations (INTO targets) are
// skipped: tail replay re-evaluates the producer query at each logged tick,
// which re-derives those contents — applying the logged events too would
// double-apply every insert and delete.
func (p *PEMS) applyRecoveredEvent(rel string, kind stream.EventKind, at service.Instant, t value.Tuple) error {
	if p.exec.Materialized(rel) {
		return nil
	}
	x, ok := p.exec.Relation(rel)
	if !ok {
		return fmt.Errorf("pems: recovered event for unknown relation %q", rel)
	}
	if kind == stream.Delete {
		return x.Delete(at, t)
	}
	return x.Insert(at, t)
}

// resyncDiscoveryCurrent rebuilds each discovery relation's ref→row index
// from its (restored) relation contents. The index is built in code at
// AddDiscoveryRelation time and starts empty; after a restore the relation
// itself already holds rows, and without this resync the next
// syncDiscoveryRelations pass would insert every still-present service a
// second time.
func (p *PEMS) resyncDiscoveryCurrent() {
	p.mu.Lock()
	rels := append([]*discoveryRelation(nil), p.discoRels...)
	p.mu.Unlock()
	for _, d := range rels {
		d.current = map[string]value.Tuple{}
		for _, row := range d.rel.Current() {
			if d.svcIdx < len(row) {
				d.current[row[d.svcIdx].ServiceRef()] = row
			}
		}
	}
}

// resyncFeedSince fast-forwards each feed stream's per-feed high-water mark
// to the recovered instant. The marks live in memory only; left at their
// fresh-start default (-1) the first post-recovery poll would re-fetch every
// item the restored stream relation already holds and insert them all a
// second time.
func (p *PEMS) resyncFeedSince() {
	now := p.exec.Now()
	if now == 0 {
		return // fresh environment: let the first poll fetch from the start
	}
	p.mu.Lock()
	states := make([]*feedState, 0, len(p.feedStates))
	for _, fs := range p.feedStates {
		states = append(states, fs)
	}
	p.mu.Unlock()
	for _, fs := range states {
		for _, ref := range p.registry.Implementing(fs.proto) {
			if _, ok := fs.since[ref]; !ok {
				fs.since[ref] = now
			}
		}
	}
}

// logQueryDDL records a continuous-query registration in the WAL. The
// post-optimization plan is logged, not the user's original source, so
// replay re-registers the exact plan whose node indices the rest of the log
// refers to.
func (p *PEMS) logQueryDDL(q *cq.Query) {
	m := p.walManager()
	if m == nil {
		return
	}
	var onErr string
	if pol := q.Degradation(); pol != resilience.Default {
		onErr = " ON ERROR " + pol.String()
	}
	var into string
	if q.Into() != "" {
		into = " INTO " + q.Into()
		if q.Retain() > 0 {
			into += fmt.Sprintf(" RETAIN %d INSTANTS", q.Retain())
		}
	}
	text := fmt.Sprintf("REGISTER QUERY %s%s%s AS %s;", q.Name(), onErr, into, q.Plan().String())
	if err := m.AppendDDL(text, p.exec.Now()+1); err != nil {
		slog.Warn("pems: wal ddl append failed", "query", q.Name(), "err", err.Error())
	}
}

// logUnregisterDDL records a query removal in the WAL.
func (p *PEMS) logUnregisterDDL(name string) {
	m := p.walManager()
	if m == nil {
		return
	}
	text := fmt.Sprintf("UNREGISTER QUERY %s;", name)
	if err := m.AppendDDL(text, p.exec.Now()+1); err != nil {
		slog.Warn("pems: wal ddl append failed", "query", name, "err", err.Error())
	}
}

// logCatalogDDL records one successfully executed catalog statement in the
// WAL, re-rendered from the live objects so replay sees canonical text.
// INSERT/DELETE are deliberately absent: data changes ride the relation
// event hooks, and logging them twice would double-apply on replay.
func (p *PEMS) logCatalogDDL(st ddl.Statement, at service.Instant) {
	m := p.walManager()
	if m == nil {
		return
	}
	var text string
	switch t := st.(type) {
	case *ddl.CreatePrototype:
		if proto, err := p.registry.Prototype(t.Name); err == nil {
			text = proto.String()
		}
	case *ddl.CreateService:
		text = fmt.Sprintf("SERVICE %s IMPLEMENTS %s;", t.Ref, strings.Join(t.Prototypes, ", "))
	case *ddl.CreateRelation:
		if x, err := p.catalog.Relation(t.Name); err == nil {
			text = catalog.RelationDDL(x)
		}
	case *ddl.Drop:
		text = fmt.Sprintf("DROP RELATION %s;", t.Name)
	}
	if text == "" {
		return
	}
	if err := m.AppendDDL(text, at); err != nil {
		slog.Warn("pems: wal ddl append failed", "err", err.Error())
	}
}

// closeDurability writes a final checkpoint (only when the manager actually
// recovered — an un-recovered executor would snapshot an empty environment
// over a good checkpoint) and closes the WAL.
func (p *PEMS) closeDurability() {
	p.mu.Lock()
	m := p.wal
	p.wal = nil
	p.mu.Unlock()
	if m == nil {
		return
	}
	if m.Recovered() {
		if err := m.Checkpoint(p.catalog.DumpSchema(), p.exec.Snapshot()); err != nil {
			slog.Warn("pems: final checkpoint failed", "err", err.Error())
		}
	}
	if err := m.Close(); err != nil {
		slog.Warn("pems: wal close failed", "err", err.Error())
	}
}
