package pems_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"serena/internal/pems"
	"serena/internal/trace"
)

// TestDebugHTTPSurface exercises every route of the PEMS observability mux
// through httptest: status codes, content types, and JSON shapes.
func TestDebugHTTPSurface(t *testing.T) {
	p, _, _, _ := newScenarioPEMS(t)
	defer p.Close()
	if _, err := p.RegisterQuery("probe", "select[area = \"office\"](cameras)", false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	h := p.DebugHandler()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// /metrics: JSON snapshot with the three metric families.
	rec := get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics content type %q", ct)
	}
	var snap struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics bad JSON: %v", err)
	}
	if snap.Counters["cq.ticks"] < 1 {
		t.Fatalf("/metrics missing tick counter: %v", snap.Counters)
	}

	// /debug/serena: human-readable status mentioning the query.
	rec = get("/debug/serena")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "probe") {
		t.Fatalf("/debug/serena = %d, body missing query:\n%s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "clock instant: 0") {
		t.Fatalf("/debug/serena missing clock:\n%s", rec.Body.String())
	}

	// /debug/vars: expvar JSON (always valid JSON object).
	rec = get("/debug/vars")
	var vars map[string]json.RawMessage
	if rec.Code != 200 || json.Unmarshal(rec.Body.Bytes(), &vars) != nil {
		t.Fatalf("/debug/vars = %d, not JSON", rec.Code)
	}

	// /debug/pprof/: index page served from the private mux.
	rec = get("/debug/pprof/")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "profile") {
		t.Fatalf("/debug/pprof/ = %d", rec.Code)
	}

	// /debug/trace: valid JSON whether or not any spans are retained.
	rec = get("/debug/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/trace status %d", rec.Code)
	}
	var dump struct {
		SampleEvery int64             `json:"sample_every"`
		Traces      []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/trace bad JSON: %v", err)
	}
	if dump.Traces == nil {
		t.Fatal("/debug/trace must serve traces:[] even when empty")
	}

	// A traced evaluation shows up on the endpoint.
	trace.Default.Reset()
	defer trace.Default.Reset()
	if _, err := p.TraceOneShot("select[area = \"office\"](cameras)"); err != nil {
		t.Fatal(err)
	}
	rec = get("/debug/trace")
	if !strings.Contains(rec.Body.String(), "query.eval") {
		t.Fatalf("/debug/trace missing forced trace:\n%s", rec.Body.String())
	}

	// Bad trace_id filter → 400.
	rec = get("/debug/trace?trace_id=nothex")
	if rec.Code != 400 {
		t.Fatalf("bad trace_id should 400, got %d", rec.Code)
	}
}

// TestDebugHTTPEmptyPEMS covers the empty-registry edge: a fresh PEMS with
// no queries, relations, or spans still serves every route.
func TestDebugHTTPEmptyPEMS(t *testing.T) {
	p := pems.New()
	defer p.Close()
	h := p.DebugHandler()
	for _, path := range []string{"/metrics", "/debug/serena", "/debug/vars", "/debug/trace"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s on empty PEMS = %d", path, rec.Code)
		}
	}
}

// TestServeMetricsBindsOnce ensures the HTTP endpoint is exclusive per PEMS
// and serves over a real listener.
func TestServeMetricsBindsOnce(t *testing.T) {
	p := pems.New()
	defer p.Close()
	addr, err := p.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("no bound address")
	}
	if _, err := p.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeMetrics should error")
	}
}
