package pems_test

import (
	"fmt"
	"log"

	"serena/internal/device"
	"serena/internal/pems"
)

// Example shows the minimal PEMS loop: declare the environment in Serena
// DDL, register a device, and run a one-shot Serena SQL query whose WHERE
// restricts which services get invoked.
func Example() {
	p := pems.New()
	defer p.Close()
	if err := p.ExecuteDDL(`
		PROTOTYPE getTemperature( ) : (temperature REAL );
		EXTENDED RELATION sensors (
		  sensor SERVICE, location STRING, temperature REAL VIRTUAL
		) USING BINDING PATTERNS ( getTemperature[sensor] );
		INSERT INTO sensors VALUES (sensor06, "office"), (sensor22, "roof");`); err != nil {
		log.Fatal(err)
	}
	if err := p.Registry().Register(device.NewSensor("sensor06", "office", 21)); err != nil {
		log.Fatal(err)
	}
	if err := p.Registry().Register(device.NewSensor("sensor22", "roof", 15)); err != nil {
		log.Fatal(err)
	}
	res, err := p.OneShotSQL(`SELECT location, temperature FROM sensors
		USING getTemperature WHERE location = "office"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Relation.Tuples()[0])
	fmt.Println("invocations:", res.Stats.Passive)
	// Output:
	// ("office", 21)
	// invocations: 1
}
