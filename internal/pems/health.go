package pems

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"serena/internal/cq"
	"serena/internal/service"
)

// EnableSelfTelemetry turns on the executor's self-telemetry subsystem:
// the sys$metrics / sys$health / sys$streams system relations and the
// per-tick health scraper (see internal/cq/telemetry.go). In a durable
// environment call it after EnableDurability and before Recover, so
// WAL-logged queries over the sys$ relations can re-register.
func (p *PEMS) EnableSelfTelemetry(opts cq.TelemetryOptions) (*cq.Telemetry, error) {
	t, err := p.exec.EnableSelfTelemetry(opts)
	if err == nil && p.manager != nil {
		// Federated deployments also get sys$peers, fed from the discovery
		// manager's membership view.
		t.SetPeerSource(p.peerReports)
	}
	return t, err
}

// Telemetry returns the self-telemetry subsystem, or nil when disabled.
func (p *PEMS) Telemetry() *cq.Telemetry { return p.exec.Telemetry() }

// SetStreamCadence configures dead-man detection for a stream: silent for
// more than `cadence` instants → STALLED in sys$streams and /debug/health.
func (p *PEMS) SetStreamCadence(name string, cadence service.Instant) error {
	t := p.exec.Telemetry()
	if t == nil {
		return fmt.Errorf("pems: self-telemetry is not enabled")
	}
	if _, ok := p.exec.Relation(name); !ok {
		return fmt.Errorf("pems: unknown relation %q", name)
	}
	t.SetStreamCadence(name, cadence)
	return nil
}

// HealthReport is the JSON shape served by /debug/health.
type HealthReport struct {
	Enabled      bool                 `json:"enabled"`
	Instant      int64                `json:"instant"`
	TickOverruns int64                `json:"tick_overruns"`
	Queries      []QueryHealthReport  `json:"queries"`
	Streams      []StreamHealthReport `json:"streams"`
}

// QueryHealthReport is one query's health in a HealthReport.
type QueryHealthReport struct {
	Query        string `json:"query"`
	State        string `json:"state"`
	Since        int64  `json:"since"`
	Reason       string `json:"reason,omitempty"`
	LastEvalNS   int64  `json:"last_eval_ns"`
	Coalesced    int64  `json:"coalesced"`
	InvokeErrors int64  `json:"invoke_errors"`
}

// StreamHealthReport is one stream's dead-man state in a HealthReport.
type StreamHealthReport struct {
	Stream  string `json:"stream"`
	State   string `json:"state"`
	Since   int64  `json:"since"`
	Lag     int64  `json:"lag"` // -1 = never produced
	Cadence int64  `json:"cadence,omitempty"`
}

// HealthReport snapshots the health assessments from the last scrape.
// Enabled is false (with everything else zero) when telemetry is off.
func (p *PEMS) HealthReport() HealthReport {
	t := p.exec.Telemetry()
	if t == nil {
		return HealthReport{}
	}
	h := t.Health()
	rep := HealthReport{
		Enabled:      true,
		Instant:      int64(h.At),
		TickOverruns: p.TickOverruns(),
	}
	for _, q := range h.Queries {
		rep.Queries = append(rep.Queries, QueryHealthReport{
			Query:        q.Query,
			State:        q.State.String(),
			Since:        int64(q.Since),
			Reason:       q.Reason,
			LastEvalNS:   int64(q.LastEval),
			Coalesced:    q.Coalesced,
			InvokeErrors: q.InvokeErrors,
		})
	}
	for _, s := range h.Streams {
		rep.Streams = append(rep.Streams, StreamHealthReport{
			Stream:  s.Stream,
			State:   s.State.String(),
			Since:   int64(s.Since),
			Lag:     s.Lag,
			Cadence: int64(s.Cadence),
		})
	}
	return rep
}

// HealthReportText renders the health report for the shell's .health
// command, mirroring OverloadReport's style.
func (p *PEMS) HealthReportText() string {
	rep := p.HealthReport()
	if !rep.Enabled {
		return "self-telemetry: disabled (start with -telemetry, or EnableSelfTelemetry)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "health @ instant %d (tick overruns %d)\n", rep.Instant, rep.TickOverruns)
	fmt.Fprintf(&b, "\nqueries (%d):\n", len(rep.Queries))
	for _, q := range rep.Queries {
		fmt.Fprintf(&b, "  %-20s %-10s since=%d eval=%dns coalesced=%d errors=%d",
			q.Query, q.State, q.Since, q.LastEvalNS, q.Coalesced, q.InvokeErrors)
		if q.Reason != "" {
			fmt.Fprintf(&b, "  (%s)", q.Reason)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nstreams (%d):\n", len(rep.Streams))
	for _, s := range rep.Streams {
		lag := fmt.Sprintf("%d", s.Lag)
		if s.Lag < 0 {
			lag = "never-produced"
		}
		cad := "off"
		if s.Cadence > 0 {
			cad = fmt.Sprintf("%d", s.Cadence)
		}
		fmt.Fprintf(&b, "  %-20s %-10s since=%d lag=%s cadence=%s\n", s.Stream, s.State, s.Since, lag, cad)
	}
	return b.String()
}

// healthHandler serves /debug/health: the JSON HealthReport (with
// enabled:false when telemetry is off, rather than a 404, so probes can
// tell "off" from "gone").
func (p *PEMS) healthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.HealthReport())
	})
}
