package pems_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"serena/internal/pems"
	"serena/internal/value"
	"serena/internal/wal"
)

// The crash-during-overload harness combines the SIGKILL recovery harness
// with the overload machinery: the child runs the durable crash scenario
// WHILE a producer floods a bounded SHED_NEWEST stream, every tick overruns
// its budget and passive queries coalesce. Killing and recovering under
// that pressure must still yield the control run's exact action set — load
// shedding drops passive telemetry, never actions — and the ON OVERLOAD
// clause itself must survive WAL replay.

const overloadCrashDDL = `
EXTENDED STREAM flood ( v INTEGER ) ON OVERLOAD SHED_NEWEST CAPACITY 16;
`

// buildOverloadCrashEnv is buildCrashEnv plus the overload posture: the
// bounded flood stream, a passive query over it, a tight tick budget and
// coalescing. Identical in the child, every restarted life, and the final
// verification pass.
func buildOverloadCrashEnv(dir, side string) (*pems.PEMS, wal.Info, error) {
	p, info, err := buildCrashEnv(dir, side)
	if err != nil {
		return nil, wal.Info{}, err
	}
	if info.Fresh {
		if err := p.ExecuteDDL(overloadCrashDDL); err != nil {
			return nil, wal.Info{}, err
		}
		if _, err := p.RegisterQuery("floodwatch", `window[4](flood)`, false); err != nil {
			return nil, wal.Info{}, err
		}
	}
	p.SetTickBudget(100 * time.Microsecond)
	p.SetOverloadCoalescing(true)
	return p, info, nil
}

// floodProducer floods the bounded stream until stop is closed. Offer
// errors are expected noise during shutdown; the buffer's shed accounting
// is the signal.
func floodProducer(p *pems.PEMS, stop <-chan struct{}) {
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		_ = p.Offer("flood", value.Tuple{value.NewInt(int64(i))})
	}
}

// overloadCrashChild runs the durable environment at full tilt — fast
// ticker plus flood — until SIGKILLed.
func overloadCrashChild() {
	dir, side := os.Getenv("SERENA_OCRASH_DIR"), os.Getenv("SERENA_OCRASH_SIDE")
	p, _, err := buildOverloadCrashEnv(dir, side)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overload crash child:", err)
		os.Exit(3)
	}
	go floodProducer(p, make(chan struct{}))
	if err := p.StartTicker(2*time.Millisecond, func(error) {}); err != nil {
		fmt.Fprintln(os.Stderr, "overload crash child:", err)
		os.Exit(3)
	}
	select {} // hold until SIGKILL
}

func TestCrashDuringOverloadSIGKILL(t *testing.T) {
	if os.Getenv("SERENA_OCRASH_CHILD") == "1" {
		overloadCrashChild()
		return
	}
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	root := os.Getenv("CRASH_DATA_DIR")
	if root == "" {
		root = t.TempDir()
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "overload-data")
	side := filepath.Join(root, "overload-sends.log")
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	const iters = 2
	for i := 0; i < iters; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashDuringOverloadSIGKILL$")
		cmd.Env = append(os.Environ(),
			"SERENA_OCRASH_CHILD=1", "SERENA_OCRASH_DIR="+dir, "SERENA_OCRASH_SIDE="+side)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
		_ = cmd.Process.Kill()
		err := cmd.Wait()
		if err == nil {
			t.Fatalf("iteration %d: child exited cleanly before the kill:\n%s", i, out.String())
		}
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() != -1 {
			t.Fatalf("iteration %d: child died on its own (%v):\n%s", i, err, out.String())
		}
	}

	// Final life: recover under the same overload posture, run two more
	// instants (still flooding) so orphaned β intents resolve.
	p, info, err := buildOverloadCrashEnv(dir, side)
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	defer p.Close()
	if info.Fresh {
		t.Fatalf("nothing survived %d crashed lives", iters)
	}
	// The ON OVERLOAD clause survived WAL replay: the recovered relation
	// still has its bounded buffer.
	flood, ok := p.Executor().Relation("flood")
	if !ok {
		t.Fatal("flood stream lost across crashes")
	}
	if pol, capacity, on := flood.OverloadPolicy(); !on || capacity != 16 || pol.String() != "SHED_NEWEST" {
		t.Fatalf("overload policy lost in recovery: %v/%d/%v", pol, capacity, on)
	}
	// Deterministic flood burst: well past the 16-slot capacity, so the
	// recovered buffer itself demonstrably sheds in this life too.
	for i := 0; i < 100; i++ {
		if err := p.Offer("flood", value.Tuple{value.NewInt(int64(i))}); err != nil {
			t.Fatalf("offer after recovery: %v", err)
		}
	}
	target := p.Now() + 2
	if err := p.RunUntil(target); err != nil {
		t.Fatal(err)
	}

	// Control: the SAME logical scenario, unloaded — no durability, no
	// crashes, no flood, no budget. Action sets must be exactly equal.
	ctl := controlEnv(t, filepath.Join(t.TempDir(), "control-sends.log"))
	if err := ctl.RunUntil(target); err != nil {
		t.Fatal(err)
	}
	fwdR, ok := p.Executor().Query("forward")
	if !ok {
		t.Fatal("forward query lost across crashes")
	}
	fwdC, _ := ctl.Executor().Query("forward")
	if !fwdR.Actions().Equal(fwdC.Actions()) {
		t.Errorf("crash-under-overload action set differs from control\n recovered: %s\n control:   %s",
			fwdR.Actions(), fwdC.Actions())
	}

	// At-most-once held through crashes AND overload: no physical delivery
	// fired twice, none outside the control's set.
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatalf("no physical deliveries recorded: %v", err)
	}
	allowed := map[string]bool{}
	for _, a := range fwdC.Actions().Sorted() {
		allowed[a.Input[0].Str()+"|"+a.Input[1].Str()] = true
	}
	seen := map[string]int{}
	for _, line := range strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		seen[line]++
		if seen[line] > 1 {
			t.Fatalf("active invocation fired twice across crashes: %q", line)
		}
		if !allowed[line] {
			t.Errorf("delivery %q never happens in the control run", line)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no active invocation ever fired; harness produced no load")
	}
	offered, shed := flood.IngestStats()
	t.Logf("crash-under-overload: %d lives, instant %d, %d deliveries, %d offered, %d shed, %d overruns",
		iters, target, len(seen), offered, shed, p.TickOverruns())
}
