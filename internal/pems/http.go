package pems

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"serena/internal/obs"
	"serena/internal/trace"
)

// ServeMetrics starts an HTTP observability endpoint on addr (e.g.
// "127.0.0.1:0" to pick a free port) and returns the bound address. Routes
// (the same obs.DebugMux layout pemsd's -debug listener uses):
//
//	/metrics        registry snapshot: JSON by default, Prometheus text
//	                with ?format=prometheus or a matching Accept header
//	/debug/serena   human-readable status: clock, queries, breakers, metrics
//	/debug/health   JSON health report (per-query states, stream dead-man)
//	/debug/vars     standard expvar JSON (includes the "serena" variable)
//	/debug/trace    retained invocation traces as JSON (?trace_id=, ?limit=)
//	/debug/pprof/*  net/http/pprof profiles
//
// The server is stopped by Close. Starting a second server on the same
// PEMS errors.
func (p *PEMS) ServeMetrics(addr string) (string, error) {
	p.mu.Lock()
	if p.metricsShutdown != nil {
		p.mu.Unlock()
		return "", fmt.Errorf("pems: metrics server already running")
	}
	p.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: p.DebugHandler()}
	go func() { _ = srv.Serve(ln) }()
	p.mu.Lock()
	p.metricsShutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	p.mu.Unlock()
	return ln.Addr().String(), nil
}

// DebugHandler returns the observability mux ServeMetrics serves, for
// embedding into an existing HTTP server or an httptest harness.
func (p *PEMS) DebugHandler() http.Handler {
	return obs.DebugMux(p.writeStatus, map[string]http.Handler{
		"/debug/trace":  trace.Handler(trace.Default),
		"/debug/health": p.healthHandler(),
		"/debug/peers":  p.peersHandler(),
	})
}

// writeStatus renders the human-readable status page (/debug/serena).
func (p *PEMS) writeStatus(w io.Writer) {
	var b strings.Builder
	fmt.Fprintf(&b, "serena PEMS\n===========\n\nclock instant: %d\n", p.Now())

	names := p.exec.QueryNames()
	fmt.Fprintf(&b, "\ncontinuous queries (%d):\n", len(names))
	for _, name := range names {
		q, ok := p.exec.Query(name)
		if !ok {
			continue
		}
		st := q.Stats()
		fmt.Fprintf(&b, "  %-16s %s\n", name, q.Plan())
		fmt.Fprintf(&b, "  %-16s on-error=%s passive=%d memoized=%d active=%d errors=%d\n",
			"", q.Degradation(), st.Passive, st.Memoized, st.Active, len(q.InvokeErrors()))
	}

	rels := p.exec.RelationNames()
	fmt.Fprintf(&b, "\nrelations (%d): %s\n", len(rels), strings.Join(rels, ", "))

	if states := p.BreakerStates(); states != nil {
		refs := make([]string, 0, len(states))
		for ref := range states {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		fmt.Fprintf(&b, "\ncircuit breakers (%d):\n", len(refs))
		for _, ref := range refs {
			fmt.Fprintf(&b, "  %-16s %s\n", ref, states[ref])
		}
	}

	fmt.Fprintf(&b, "\nmetrics:\n%s", obs.Default.Snapshot().Render())
	_, _ = io.WriteString(w, b.String())
}
