package pems

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"serena/internal/obs"
)

// ServeMetrics starts an HTTP observability endpoint on addr (e.g.
// "127.0.0.1:0" to pick a free port) and returns the bound address. Routes:
//
//	/metrics       JSON snapshot of every counter, gauge, and histogram
//	/debug/serena  human-readable status: clock, queries, breakers, metrics
//	/debug/vars    standard expvar JSON (includes the "serena" variable)
//
// The server is stopped by Close. Starting a second server on the same
// PEMS errors.
func (p *PEMS) ServeMetrics(addr string) (string, error) {
	p.mu.Lock()
	if p.metricsShutdown != nil {
		p.mu.Unlock()
		return "", fmt.Errorf("pems: metrics server already running")
	}
	p.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/debug/serena", p.handleDebug)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	p.mu.Lock()
	p.metricsShutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	p.mu.Unlock()
	return ln.Addr().String(), nil
}

// handleMetrics serves the machine-readable metrics snapshot.
func (p *PEMS) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(obs.Default.Snapshot())
}

// handleDebug serves the human-readable status page.
func (p *PEMS) handleDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "serena PEMS\n===========\n\nclock instant: %d\n", p.Now())

	names := p.exec.QueryNames()
	fmt.Fprintf(&b, "\ncontinuous queries (%d):\n", len(names))
	for _, name := range names {
		q, ok := p.exec.Query(name)
		if !ok {
			continue
		}
		st := q.Stats()
		fmt.Fprintf(&b, "  %-16s %s\n", name, q.Plan())
		fmt.Fprintf(&b, "  %-16s on-error=%s passive=%d memoized=%d active=%d errors=%d\n",
			"", q.Degradation(), st.Passive, st.Memoized, st.Active, len(q.InvokeErrors()))
	}

	rels := p.exec.RelationNames()
	fmt.Fprintf(&b, "\nrelations (%d): %s\n", len(rels), strings.Join(rels, ", "))

	if states := p.BreakerStates(); states != nil {
		refs := make([]string, 0, len(states))
		for ref := range states {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		fmt.Fprintf(&b, "\ncircuit breakers (%d):\n", len(refs))
		for _, ref := range refs {
			fmt.Fprintf(&b, "  %-16s %s\n", ref, states[ref])
		}
	}

	fmt.Fprintf(&b, "\nmetrics:\n%s", obs.Default.Snapshot().Render())
	_, _ = io.WriteString(w, b.String())
}
