// Package pems assembles the Pervasive Environment Management System of
// the paper's Figure 1 (Gripay et al., EDBT 2010, Section 5): the core
// Environment Resource Manager (central service registry + discovery
// manager reaching distributed Local ERMs), the Extended Table Manager
// (Serena DDL over XD-Relations) and the Query Processor (one-shot and
// continuous Serena Algebra Language queries, with optional logical
// optimization).
package pems

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
	"unicode"

	"serena/internal/algebra"
	"serena/internal/catalog"
	"serena/internal/cq"
	"serena/internal/ddl"
	"serena/internal/discovery"
	"serena/internal/obs"
	"serena/internal/optimizer"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/rewrite"
	"serena/internal/sal"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/ssql"
	"serena/internal/stream"
	"serena/internal/value"
	"serena/internal/wal"
)

// PEMS is one Pervasive Environment Management System instance.
type PEMS struct {
	registry *service.Registry
	catalog  *catalog.Catalog
	exec     *cq.Executor
	manager  *discovery.Manager

	mu          sync.Mutex
	wal         *wal.Manager
	discoRels   []*discoveryRelation
	feedStates  map[string]*feedState
	tickerStop  chan struct{}
	tickerDone  chan struct{}
	parallelism int
	batchSize   int
	tickBudget  time.Duration
	coalescing  bool

	// explainOut receives the output of EXPLAIN [ANALYZE] DDL statements
	// (default: discarded; the serena shell points it at stdout).
	explainOut io.Writer
	// metricsShutdown stops the HTTP observability endpoint, if running.
	metricsShutdown func()
}

// Option configures a PEMS.
type Option func(*PEMS)

// WithDiscovery attaches a discovery bus: Local ERM nodes announcing on the
// bus are dialed and their services registered centrally.
func WithDiscovery(bus discovery.Bus, opts ...discovery.Option) Option {
	return func(p *PEMS) {
		p.manager = discovery.NewManager(p.registry, bus, opts...)
	}
}

// New builds a PEMS. The catalog's relations are automatically registered
// with the continuous executor.
func New(opts ...Option) *PEMS {
	reg := service.NewRegistry()
	p := &PEMS{
		registry:   reg,
		catalog:    catalog.New(reg),
		exec:       cq.NewExecutor(reg),
		feedStates: map[string]*feedState{},
	}
	p.catalog.OnCreateRelation = func(x *stream.XDRelation) {
		_ = p.exec.AddRelation(x)
	}
	obs.PublishExpvar()
	for _, o := range opts {
		o(p)
	}
	if p.manager != nil {
		p.manager.Start()
	}
	return p
}

// Close stops the real-time ticker (if running), discovery, and the HTTP
// observability endpoint. With durability enabled it writes a final
// checkpoint and closes the WAL, so a clean shutdown restarts without any
// log replay.
func (p *PEMS) Close() {
	p.StopTicker()
	if p.manager != nil {
		p.manager.Stop()
	}
	p.closeDurability()
	p.mu.Lock()
	shutdown := p.metricsShutdown
	p.metricsShutdown = nil
	p.mu.Unlock()
	if shutdown != nil {
		shutdown()
	}
}

// Registry returns the central service registry (the core ERM's view of
// the environment).
func (p *PEMS) Registry() *service.Registry { return p.registry }

// Catalog returns the Extended Table Manager.
func (p *PEMS) Catalog() *catalog.Catalog { return p.catalog }

// Executor returns the continuous Query Processor.
func (p *PEMS) Executor() *cq.Executor { return p.exec }

// Discovery returns the discovery manager, or nil without WithDiscovery.
func (p *PEMS) Discovery() *discovery.Manager { return p.manager }

// SetInvocationParallelism bounds how many service invocations one
// invocation operator may run concurrently, for both one-shot and
// continuous queries (Section 5.1: invocations are handled asynchronously;
// sound because services are deterministic at a given instant, Section
// 3.2). Values < 2 keep the sequential default.
func (p *PEMS) SetInvocationParallelism(n int) {
	p.mu.Lock()
	p.parallelism = n
	p.mu.Unlock()
	p.exec.SetParallelism(n)
}

func (p *PEMS) invocationParallelism() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parallelism
}

// SetInvocationBatchSize bounds how many β invocations the batch planner
// packs into one registry dispatch (one wire frame per remote chunk), for
// both one-shot and continuous queries. Zero restores the default
// (query.DefaultBatchSize); negative disables batching entirely, keeping
// the per-tuple invocation path.
func (p *PEMS) SetInvocationBatchSize(n int) {
	p.mu.Lock()
	p.batchSize = n
	p.mu.Unlock()
	p.exec.SetBatchSize(n)
}

func (p *PEMS) invocationBatchSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batchSize
}

// SetQueryParallelism bounds how many registered continuous queries one
// tick evaluates concurrently. Queries reading another query's output
// always run after their producer, so derived views keep their
// same-instant semantics. Values < 2 keep the sequential default.
func (p *PEMS) SetQueryParallelism(n int) {
	p.exec.SetQueryParallelism(n)
}

// SetInvocationTimeout bounds every physical service invocation (local or
// remote) performed through this PEMS. Zero disables the deadline.
func (p *PEMS) SetInvocationTimeout(d time.Duration) { p.registry.SetInvokeTimeout(d) }

// SetRetryPolicy configures transparent retries of failed invocations.
// Only PASSIVE prototypes are ever retried — retrying an active invocation
// could duplicate its external effect and inflate the query's action set
// (Definition 8); see DESIGN.md, "Failure semantics".
func (p *PEMS) SetRetryPolicy(rp resilience.RetryPolicy) { p.registry.SetRetryPolicy(rp) }

// EnableBreakers turns on per-service circuit breakers: a service failing
// repeatedly is treated as temporarily withdrawn from the environment (its
// breaker opens, it disappears from discovery) until a half-open probe
// succeeds.
func (p *PEMS) EnableBreakers(policy resilience.BreakerPolicy) *resilience.BreakerSet {
	return p.registry.EnableBreakers(policy)
}

// BreakerStates reports the breaker state of every tracked service; nil if
// breakers are not enabled.
func (p *PEMS) BreakerStates() map[string]resilience.State {
	b := p.registry.Breakers()
	if b == nil {
		return nil
	}
	return b.States()
}

// SetQueryDegradation sets the β degradation policy of a registered
// continuous query (what a failing bound service does to the query:
// abort, drop the tuple, or null-fill its virtual attributes).
func (p *PEMS) SetQueryDegradation(name string, policy resilience.DegradationPolicy) error {
	return p.exec.SetDegradation(name, policy)
}

// ExecuteDDL runs a Serena DDL script. Data statements are stamped at the
// next tick instant so running continuous queries observe them on the
// following Tick. REGISTER QUERY statements are compiled (Serena SQL or
// Serena Algebra Language, auto-detected) and registered with the query
// processor with optimization enabled, so a single script can declare a
// whole application (Section 5.1: the Query Processor "allows to register
// queries"). An ON ERROR clause on a REGISTER QUERY selects the query's β
// degradation policy.
func (p *PEMS) ExecuteDDL(src string) error {
	stmts, err := ddl.Parse(src)
	if err != nil {
		return err
	}
	at := p.exec.Now() + 1
	for i, st := range stmts {
		switch t := st.(type) {
		case *ddl.RegisterQuery:
			opts := cq.RegisterOptions{Into: t.Into, Retain: service.Instant(t.Retain)}
			var q *cq.Query
			if LooksLikeSQL(t.Source) {
				q, err = p.registerQuerySQL(t.Name, t.Source, true, opts)
			} else {
				q, err = p.registerQuery(t.Name, t.Source, true, opts)
			}
			if err == nil && t.OnError != "" {
				var policy resilience.DegradationPolicy
				if policy, err = resilience.ParsePolicy(t.OnError); err == nil {
					err = p.exec.SetDegradation(t.Name, policy)
				}
			}
			if err == nil {
				// Logged after ON ERROR applies so replay restores the policy.
				p.logQueryDDL(q)
			}
		case *ddl.UnregisterQuery:
			err = p.UnregisterQuery(t.Name)
		case *ddl.Explain:
			err = p.runExplain(t)
		default:
			if err = p.catalog.Execute(st, at); err == nil {
				p.logCatalogDDL(st, at)
			}
		}
		if err != nil {
			slog.Error("pems: ddl statement failed", "statement", i+1, "err", err.Error())
			return fmt.Errorf("pems: statement %d: %w", i+1, err)
		}
	}
	slog.Debug("pems: ddl script executed", "statements", len(stmts), "at", int64(at))
	return nil
}

// OneShot parses and evaluates a one-shot SAL query against the current
// state of the environment (Definition 7; evaluation instant = the last
// executed tick, or 0 before any tick).
func (p *PEMS) OneShot(src string) (*query.Result, error) {
	n, err := sal.Parse(src)
	if err != nil {
		return nil, err
	}
	at := p.exec.Now()
	if at < 0 {
		at = 0
	}
	ctx := query.NewContext(p.Env(at), p.registry, at)
	ctx.Parallelism = p.invocationParallelism()
	ctx.BatchSize = p.invocationBatchSize()
	return query.EvaluateCtx(n, ctx)
}

// OneShotSQL compiles and evaluates a one-shot Serena SQL query.
func (p *PEMS) OneShotSQL(src string) (*query.Result, error) {
	env := p.snapshotEnv()
	st, err := ssql.Compile(src, env)
	if err != nil {
		return nil, err
	}
	at := p.exec.Now()
	if at < 0 {
		at = 0
	}
	ctx := query.NewContext(p.Env(at), p.registry, at)
	ctx.Parallelism = p.invocationParallelism()
	ctx.BatchSize = p.invocationBatchSize()
	return query.EvaluateCtx(st.Root, ctx)
}

// RegisterQuerySQL compiles a Serena SQL query and registers it as a
// continuous query, optionally running the optimizer over the compiled
// plan.
func (p *PEMS) RegisterQuerySQL(name, src string, optimize bool) (*cq.Query, error) {
	q, err := p.registerQuerySQL(name, src, optimize, cq.RegisterOptions{})
	if err == nil {
		p.logQueryDDL(q)
	}
	return q, err
}

func (p *PEMS) registerQuerySQL(name, src string, optimize bool, opts cq.RegisterOptions) (*cq.Query, error) {
	env := p.snapshotEnv()
	st, err := ssql.Compile(src, env)
	if err != nil {
		return nil, err
	}
	n := st.Root
	if optimize {
		opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: env}, optimizer.DefaultCostModel())
		if plan, err := opt.Optimize(n, env); err == nil {
			n = plan.Root
		}
	}
	return p.exec.RegisterWith(name, n, opts)
}

// RegisterQuery parses a SAL query, optionally optimizes it (Table 5
// rewrites under the invocation-dominant cost model) and registers it as a
// continuous query.
func (p *PEMS) RegisterQuery(name, src string, optimize bool) (*cq.Query, error) {
	q, err := p.registerQuery(name, src, optimize, cq.RegisterOptions{})
	if err == nil {
		p.logQueryDDL(q)
	}
	return q, err
}

// RegisterQueryWith is RegisterQuery plus the INTO/RETAIN clauses: the
// query's output is materialized as a named derived XD-Relation (durable
// like a base relation in WAL-backed environments) with an optional
// per-relation retention horizon. SQL sources are auto-detected like in
// ExecuteDDL.
func (p *PEMS) RegisterQueryWith(name, src string, optimize bool, opts cq.RegisterOptions) (*cq.Query, error) {
	var (
		q   *cq.Query
		err error
	)
	if LooksLikeSQL(src) {
		q, err = p.registerQuerySQL(name, src, optimize, opts)
	} else {
		q, err = p.registerQuery(name, src, optimize, opts)
	}
	if err == nil {
		p.logQueryDDL(q)
	}
	return q, err
}

func (p *PEMS) registerQuery(name, src string, optimize bool, opts cq.RegisterOptions) (*cq.Query, error) {
	n, err := sal.Parse(src)
	if err != nil {
		return nil, err
	}
	if optimize {
		env := p.snapshotEnv()
		opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: env}, optimizer.DefaultCostModel())
		plan, err := opt.Optimize(n, env)
		if err == nil {
			n = plan.Root
		}
		// Optimization failures (e.g. missing statistics) fall back to the
		// unoptimized plan — never block registration.
	}
	return p.exec.RegisterWith(name, n, opts)
}

// Explanation reports how a query would be planned: the original and
// optimized plans in SAL syntax, the applied rewrite steps, and the
// estimated costs under the invocation-dominant cost model.
type Explanation struct {
	Original   string
	Optimized  string
	Steps      []rewrite.Step
	CostBefore float64
	CostAfter  float64
}

// Explain plans a query without executing it. Sources starting with SELECT
// (case-insensitive) are compiled as Serena SQL; everything else parses as
// Serena Algebra Language.
func (p *PEMS) Explain(src string) (*Explanation, error) {
	env := p.snapshotEnv()
	var n query.Node
	trimmed := strings.TrimSpace(src)
	if LooksLikeSQL(trimmed) {
		st, err := ssql.Compile(trimmed, env)
		if err != nil {
			return nil, err
		}
		n = st.Root
	} else {
		var err error
		n, err = sal.Parse(trimmed)
		if err != nil {
			return nil, err
		}
	}
	opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: env}, optimizer.DefaultCostModel())
	plan, err := opt.Optimize(n, env)
	if err != nil {
		return nil, err
	}
	return &Explanation{
		Original:   n.String(),
		Optimized:  plan.Root.String(),
		Steps:      plan.Steps,
		CostBefore: plan.CostBefore,
		CostAfter:  plan.CostAfter,
	}, nil
}

// SetExplainOutput directs the output of EXPLAIN [ANALYZE] DDL statements
// to w (nil restores the default of discarding it). The serena shell sets
// this to its stdout so scripted EXPLAINs print like interactive ones.
func (p *PEMS) SetExplainOutput(w io.Writer) {
	p.mu.Lock()
	p.explainOut = w
	p.mu.Unlock()
}

func (p *PEMS) explainWriter() io.Writer {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.explainOut == nil {
		return io.Discard
	}
	return p.explainOut
}

// runExplain executes an EXPLAIN [ANALYZE] DDL statement, writing the plan
// (or trace) to the configured explain output.
func (p *PEMS) runExplain(st *ddl.Explain) error {
	w := p.explainWriter()
	if st.Analyze {
		rep, err := p.ExplainAnalyze(st.Source)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, rep.Plan)
		return err
	}
	ex, err := p.Explain(st.Source)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "original:  %s\n", ex.Original)
	for _, step := range ex.Steps {
		fmt.Fprintf(w, "  %-28s -> %s\n", step.Rule, step.Result)
	}
	fmt.Fprintf(w, "optimized: %s\n", ex.Optimized)
	fmt.Fprintf(w, "estimated cost: %.0f -> %.0f\n", ex.CostBefore, ex.CostAfter)
	return nil
}

// TraceReport is the outcome of an EXPLAIN ANALYZE run: the annotated
// physical plan (one line per operator with calls, input/output
// cardinalities, and wall/self times) plus the result it was measured on.
type TraceReport struct {
	Plan   string
	Result *query.Result
}

// ExplainAnalyze actually executes a query with every operator instrumented
// (EXPLAIN ANALYZE semantics): the plan tree is rebuilt with tracing
// wrappers, evaluated at the current instant, and rendered with measured
// per-operator cardinalities and timings. A leading EXPLAIN [ANALYZE]
// keyword pair in src is accepted and ignored. Beware: active invocations
// in the query DO fire — EXPLAIN ANALYZE runs the query for real.
func (p *PEMS) ExplainAnalyze(src string) (*TraceReport, error) {
	body, _, _ := StripExplain(src)
	env := p.snapshotEnv()
	var n query.Node
	if LooksLikeSQL(body) {
		st, err := ssql.Compile(body, env)
		if err != nil {
			return nil, err
		}
		n = st.Root
	} else {
		var err error
		n, err = sal.Parse(body)
		if err != nil {
			return nil, err
		}
	}
	traced, err := query.Instrument(n)
	if err != nil {
		return nil, err
	}
	at := p.exec.Now()
	if at < 0 {
		at = 0
	}
	ctx := query.NewContext(p.Env(at), p.registry, at)
	ctx.Parallelism = p.invocationParallelism()
	ctx.BatchSize = p.invocationBatchSize()
	res, err := query.EvaluateCtx(traced, ctx)
	if err != nil {
		// A failed evaluation still carries a partial trace (the error is
		// annotated on the operator that raised it).
		return &TraceReport{Plan: traced.Render()}, err
	}
	return &TraceReport{Plan: traced.Render(), Result: res}, nil
}

// StripExplain removes an optional leading EXPLAIN [ANALYZE] keyword pair
// from a query source, reporting which prefixes were present. It lets
// shells accept "EXPLAIN ANALYZE <query>" for SAL sources too (the SQL
// compiler recognizes the prefix natively).
func StripExplain(src string) (body string, explain, analyze bool) {
	body = strings.TrimSpace(src)
	if head, rest := headWord(body); strings.EqualFold(head, "EXPLAIN") && rest != "" {
		explain = true
		body = rest
		if head, rest = headWord(body); strings.EqualFold(head, "ANALYZE") && rest != "" {
			analyze = true
			body = rest
		}
	}
	return body, explain, analyze
}

// headWord splits a trimmed source into its first whitespace-delimited word
// and the trimmed remainder ("" if there is no remainder).
func headWord(s string) (word, rest string) {
	i := strings.IndexFunc(s, unicode.IsSpace)
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// LooksLikeSQL reports whether a query source is Serena SQL rather than
// Serena Algebra Language: it starts with the SELECT keyword followed by
// whitespace (the SAL operator of the same name is written "select[…]").
// A bracket after the keyword — even space-separated, as produced when the
// DDL parser re-tokenizes a REGISTER QUERY body — means SAL.
func LooksLikeSQL(src string) bool {
	t := strings.TrimSpace(src)
	if len(t) < 7 || !strings.EqualFold(t[:6], "SELECT") {
		return false
	}
	switch t[6] {
	case ' ', '\t', '\n', '\r':
	default:
		return false
	}
	rest := strings.TrimLeft(t[6:], " \t\n\r")
	return !strings.HasPrefix(rest, "[")
}

// snapshotEnv exposes the environment's current contents for planning.
func (p *PEMS) snapshotEnv() query.Environment {
	at := p.exec.Now()
	if at < 0 {
		at = 0
	}
	return p.Env(at)
}

// Env returns a snapshot query.Environment at the given instant over ALL
// relations of this PEMS — catalog tables as well as executor-only streams
// (poll streams, feed streams, discovery relations).
func (p *PEMS) Env(at service.Instant) query.Environment {
	return pemsEnv{p: p, at: at}
}

type pemsEnv struct {
	p  *PEMS
	at service.Instant
}

// Relation implements query.Environment.
func (e pemsEnv) Relation(name string) (*algebra.XRelation, error) {
	x, ok := e.p.exec.Relation(name)
	if !ok {
		return nil, fmt.Errorf("pems: unknown relation %q", name)
	}
	var tuples []value.Tuple
	if x.LastInstant() <= e.at {
		tuples = x.Current()
	} else {
		tuples = x.At(e.at)
	}
	return algebra.New(x.Schema(), tuples)
}

// UnregisterQuery removes a continuous query.
func (p *PEMS) UnregisterQuery(name string) error {
	if err := p.exec.Unregister(name); err != nil {
		return err
	}
	p.logUnregisterDDL(name)
	return nil
}

// Tick advances the environment clock one instant.
func (p *PEMS) Tick() (service.Instant, error) { return p.exec.Tick() }

// RunUntil ticks until (and including) the given instant.
func (p *PEMS) RunUntil(at service.Instant) error { return p.exec.RunUntil(at) }

// Now returns the last executed instant.
func (p *PEMS) Now() service.Instant { return p.exec.Now() }

// StartTicker drives the discrete clock in real time: one Tick per
// interval (the paper's prototype executes continuous queries "in a
// real-time fashion", Section 5.1), plus a discovery-lease sweep. Tick
// errors are passed to onErr (which may be nil). Starting twice errors;
// StopTicker (or Close) stops the clock.
func (p *PEMS) StartTicker(interval time.Duration, onErr func(error)) error {
	if interval <= 0 {
		return fmt.Errorf("pems: ticker interval must be positive")
	}
	p.mu.Lock()
	if p.tickerStop != nil {
		p.mu.Unlock()
		return fmt.Errorf("pems: ticker already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	p.tickerStop, p.tickerDone = stop, done
	p.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := p.Tick(); err != nil {
					slog.Error("pems: ticker tick failed", "err", err.Error())
					if onErr != nil {
						onErr(err)
					}
				}
				p.SweepExpiredNodes()
			}
		}
	}()
	return nil
}

// StopTicker stops the real-time clock (idempotent) and waits for the
// ticker goroutine to exit.
func (p *PEMS) StopTicker() {
	p.mu.Lock()
	stop, done := p.tickerStop, p.tickerDone
	p.tickerStop, p.tickerDone = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// SweepExpiredNodes expires discovery leases (call periodically in live
// deployments).
func (p *PEMS) SweepExpiredNodes() []string {
	if p.manager == nil {
		return nil
	}
	return p.manager.SweepExpired(time.Now())
}

// ---------------------------------------------------------------------------
// Service-discovery relations (Section 5.1: the Query Processor
// "continuously updates some specific XD-Relations so that they represent
// the set of services implementing some given prototypes").

// discoveryRelation syncs one XD-Relation with the set of services
// implementing a prototype.
type discoveryRelation struct {
	rel     *stream.XDRelation
	proto   string
	svcIdx  int // real coordinate of the service attribute
	rowFor  func(ref string) value.Tuple
	current map[string]value.Tuple // ref → row currently in the relation
}

// AddDiscoveryRelation declares an XD-Relation whose rows track the
// services implementing the given prototype. The relation schema must
// carry the service attribute named svcAttr; rowFor builds the row for a
// newly discovered reference (nil → the row is the reference plus NULLs).
// Rows are reconciled at every tick, so services appearing or disappearing
// are reflected at the next instant — live, while continuous queries run.
func (p *PEMS) AddDiscoveryRelation(sch *schema.Extended, svcAttr, protoName string, rowFor func(ref string) value.Tuple) (*stream.XDRelation, error) {
	if !sch.IsReal(svcAttr) {
		return nil, fmt.Errorf("pems: discovery relation %s: %q must be a real attribute", sch.Name(), svcAttr)
	}
	if _, err := p.registry.Prototype(protoName); err != nil {
		return nil, err
	}
	rel := stream.NewFinite(sch)
	if err := p.exec.AddRelation(rel); err != nil {
		return nil, err
	}
	svcIdx := sch.RealIndex(svcAttr)
	if rowFor == nil {
		width := sch.RealArity()
		rowFor = func(ref string) value.Tuple {
			row := make(value.Tuple, width)
			for i := range row {
				row[i] = value.NewNull()
			}
			row[svcIdx] = value.NewService(ref)
			return row
		}
	}
	d := &discoveryRelation{rel: rel, proto: protoName, svcIdx: svcIdx, rowFor: rowFor, current: map[string]value.Tuple{}}
	p.mu.Lock()
	p.discoRels = append(p.discoRels, d)
	first := len(p.discoRels) == 1
	p.mu.Unlock()
	if first {
		p.exec.AddSource(p.syncDiscoveryRelations)
	}
	return rel, nil
}

// syncDiscoveryRelations reconciles every discovery relation with the
// registry at the given instant.
func (p *PEMS) syncDiscoveryRelations(at service.Instant) error {
	p.mu.Lock()
	rels := append([]*discoveryRelation(nil), p.discoRels...)
	p.mu.Unlock()
	for _, d := range rels {
		want := map[string]bool{}
		for _, ref := range p.registry.Implementing(d.proto) {
			want[ref] = true
		}
		for ref := range want {
			if _, ok := d.current[ref]; ok {
				continue
			}
			row := d.rowFor(ref)
			if err := d.rel.Insert(at, row); err != nil {
				return err
			}
			d.current[ref] = row
		}
		for ref, row := range d.current {
			if want[ref] {
				continue
			}
			if err := d.rel.Delete(at, row); err != nil {
				return err
			}
			delete(d.current, ref)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Poll streams: materialize sensor-style passive prototypes into streams.

// AddPollStream creates an infinite XD-Relation fed by invoking, at every
// tick, the given passive prototype (with empty input) on every service
// implementing it. Each output tuple becomes a stream tuple
// (svcAttr, metaAttrs…, prototype outputs…). The paper's temperatures
// stream (Section 1.2) is AddPollStream("temperatures", "getTemperature",
// "sensor", [location STRING], locationOf).
func (p *PEMS) AddPollStream(name, protoName, svcAttr string, metaAttrs []schema.Attribute, meta func(ref string) []value.Value) (*stream.XDRelation, error) {
	proto, err := p.registry.Prototype(protoName)
	if err != nil {
		return nil, err
	}
	if proto.Active {
		return nil, fmt.Errorf("pems: poll stream %s: prototype %s is active; only passive prototypes may be polled", name, protoName)
	}
	if proto.Input.Arity() != 0 {
		return nil, fmt.Errorf("pems: poll stream %s: prototype %s takes inputs; poll streams need input-free prototypes", name, protoName)
	}
	attrs := []schema.ExtAttr{{Attribute: schema.Attribute{Name: svcAttr, Type: value.Service}}}
	for _, a := range metaAttrs {
		attrs = append(attrs, schema.ExtAttr{Attribute: a})
	}
	for _, a := range proto.Output.Attrs() {
		attrs = append(attrs, schema.ExtAttr{Attribute: a})
	}
	sch, err := schema.NewExtended(name, attrs, nil)
	if err != nil {
		return nil, err
	}
	rel := stream.NewInfinite(sch)
	if err := p.exec.AddRelation(rel); err != nil {
		return nil, err
	}
	if meta == nil {
		meta = func(string) []value.Value {
			out := make([]value.Value, len(metaAttrs))
			for i := range out {
				out[i] = value.NewNull()
			}
			return out
		}
	}
	p.exec.AddSource(func(at service.Instant) error {
		for _, ref := range p.registry.Implementing(protoName) {
			rows, err := p.registry.Invoke(protoName, ref, nil, at)
			if err != nil {
				continue // unreachable device this tick
			}
			md := meta(ref)
			for _, row := range rows {
				tuple := make(value.Tuple, 0, 1+len(md)+len(row))
				tuple = append(tuple, value.NewService(ref))
				tuple = append(tuple, md...)
				tuple = append(tuple, row...)
				if err := rel.Insert(at, tuple); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return rel, nil
}

// ---------------------------------------------------------------------------
// Feed streams (Section 5.2, RSS scenario): wrapper services are polled and
// their new items inserted into a stream.

type feedState struct {
	rel   *stream.XDRelation
	proto string
	since map[string]service.Instant
}

// FeedStreamSchema returns the schema used by AddFeedStream:
// (feed SERVICE, itemId INTEGER, title STRING, published INTEGER).
func FeedStreamSchema(name string) *schema.Extended {
	return schema.MustExtended(name, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "feed", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "itemId", Type: value.Int}},
		{Attribute: schema.Attribute{Name: "title", Type: value.String}},
		{Attribute: schema.Attribute{Name: "published", Type: value.Int}},
	}, nil)
}

// AddFeedStream creates an infinite XD-Relation fed by polling, at every
// tick, all services implementing the getItems prototype (the RSS wrapper
// of Section 5.2). A tuple is inserted per new feed item.
func (p *PEMS) AddFeedStream(name string) (*stream.XDRelation, error) {
	rel := stream.NewInfinite(FeedStreamSchema(name))
	if err := p.exec.AddRelation(rel); err != nil {
		return nil, err
	}
	fs := &feedState{rel: rel, proto: "getItems", since: map[string]service.Instant{}}
	p.mu.Lock()
	p.feedStates[name] = fs
	p.mu.Unlock()
	p.exec.AddSource(func(at service.Instant) error { return p.pollFeeds(fs, at) })
	return rel, nil
}

func (p *PEMS) pollFeeds(fs *feedState, at service.Instant) error {
	for _, ref := range p.registry.Implementing(fs.proto) {
		since, known := fs.since[ref]
		if !known {
			since = -1
		}
		rows, err := p.registry.Invoke(fs.proto, ref, value.Tuple{value.NewInt(int64(since))}, at)
		if err != nil {
			continue // unreachable feed this tick: retry next tick
		}
		for _, row := range rows {
			tuple := value.Tuple{value.NewService(ref), row[0], row[1], row[2]}
			if err := fs.rel.Insert(at, tuple); err != nil {
				return err
			}
		}
		fs.since[ref] = at
	}
	return nil
}
