package pems_test

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/pems"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
	"serena/internal/wire"
)

// fedPeer is one pemsd-like cluster member for the in-process chaos
// harness: a wire server over its own registry, heartbeating Alive on the
// shared bus. Both peers replicate the SAME service references (sensors are
// deterministic in (ref, instant), so replicas answer identically), and
// kill() is the SIGKILL analogue — the server dies, heartbeats stop, no Bye
// is ever sent.
type fedPeer struct {
	name      string
	addr      string
	srv       *wire.Server
	sensor    *device.Sensor
	messenger *device.Messenger

	mu     sync.Mutex
	stopHB chan struct{}
	wg     sync.WaitGroup
}

func newFedPeer(t *testing.T, bus *discovery.InProcBus, name string) *fedPeer {
	t.Helper()
	reg := service.NewRegistry()
	for _, proto := range []string{"temp", "send"} {
		var err error
		switch proto {
		case "temp":
			err = reg.RegisterPrototype(device.GetTemperatureProto())
		case "send":
			err = reg.RegisterPrototype(device.SendMessageProto())
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	fp := &fedPeer{
		name:      name,
		sensor:    device.NewSensor("sensor06", "office", 21),
		messenger: device.NewMessenger("email", "email"),
		stopHB:    make(chan struct{}),
	}
	if err := reg.Register(fp.sensor); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(fp.messenger); err != nil {
		t.Fatal(err)
	}
	fp.srv = wire.NewServer(name, reg)
	addr, err := fp.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fp.addr = addr
	fp.wg.Add(1)
	stop := fp.stopHB
	go func() {
		defer fp.wg.Done()
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		bus.Announce(discovery.Announcement{Kind: discovery.Alive, Node: name, Addr: addr})
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				bus.Announce(discovery.Announcement{Kind: discovery.Alive, Node: name, Addr: addr})
			}
		}
	}()
	t.Cleanup(fp.kill)
	return fp
}

// kill simulates SIGKILL: heartbeats stop and the wire server vanishes
// mid-everything. No Bye, no drain. Idempotent.
func (fp *fedPeer) kill() {
	fp.mu.Lock()
	if fp.stopHB != nil {
		close(fp.stopHB)
		fp.stopHB = nil
	}
	fp.mu.Unlock()
	fp.wg.Wait()
	_ = fp.srv.Close()
}

// renderResult flattens a per-tick query result into an order-independent
// comparison key.
func renderResult(r *algebra.XRelation) string {
	if r == nil {
		return ""
	}
	keys := make([]string, 0, r.Len())
	for _, tu := range r.Tuples() {
		keys = append(keys, tu.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// fedRun is everything observable about one cluster run: the coordinator's
// per-tick results, its Definition 8 action count, and the union of the
// physical deliveries on every peer (sorted, with duplicates preserved).
type fedRun struct {
	perTick    []string
	actions    int
	deliveries []string
}

// runFederatedScenario drives the surveillance scenario on a coordinator
// federated with two replicated peers, killing the owner of killRef
// mid-run ("" = control, never crashed). Heat events and the mid-run
// contact insertion are identical in every run, so a masked node loss must
// produce an observably identical run.
func runFederatedScenario(t *testing.T, killRef string) fedRun {
	t.Helper()
	bus := discovery.NewInProcBus()
	p := pems.New(pems.WithDiscovery(bus,
		discovery.WithLease(300*time.Millisecond),
		discovery.WithDialTimeout(time.Second)))
	defer p.Close()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	peers := map[string]*fedPeer{}
	for _, name := range []string{"fed-A", "fed-B"} {
		fp := newFedPeer(t, bus, name)
		fp.sensor.Heat(device.HeatEvent{From: 5, To: 8, Delta: 10})   // 21 → 31 °C
		fp.sensor.Heat(device.HeatEvent{From: 12, To: 16, Delta: 10}) // post-kill window
		peers[name] = fp
	}
	waitForPEMS(t, "both peers discovered", func() bool {
		return len(p.Registry().ProviderNodes("sensor06")) == 2 &&
			len(p.Registry().ProviderNodes("email")) == 2
	})
	if err := p.ExecuteDDL(`
		EXTENDED RELATION contacts (
		  name STRING, address STRING, text STRING VIRTUAL,
		  messenger SERVICE, sent BOOLEAN VIRTUAL
		) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
		EXTENDED RELATION surveillance ( name STRING, location STRING );
		INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);
		INSERT INTO surveillance VALUES ("Carla", "office");`); err != nil {
		t.Fatal(err)
	}
	locAttr := []schema.Attribute{{Name: "location", Type: value.String}}
	if _, err := p.AddPollStream("temperatures", "getTemperature", "sensor", locAttr,
		func(string) []value.Value { return []value.Value{value.NewString("office")} }); err != nil {
		t.Fatal(err)
	}
	q, err := p.RegisterQuery("alerts",
		`invoke[sendMessage](assign[text := "Temperature alert!"](join(contacts,
			join(surveillance, select[temperature > 28.0](window[1](temperatures))))))`, false)
	if err != nil {
		t.Fatal(err)
	}

	run := fedRun{}
	for at := 1; at <= 16; at++ {
		if at == 9 && killRef != "" {
			owner := p.Registry().ProviderNodes(killRef)[0]
			peers[owner].kill()
		}
		if at == 10 {
			// A new watcher appears in BOTH runs — its alert in the second
			// heat window is a fresh active invocation fired after the
			// crash, exercising active-β failover (never-sent → safe).
			if err := p.ExecuteDDL(`
				INSERT INTO contacts VALUES ("Zoe", "zoe@x", email);
				INSERT INTO surveillance VALUES ("Zoe", "office");`); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Tick(); err != nil {
			t.Fatalf("tick %d (kill %q): %v", at, killRef, err)
		}
		run.perTick = append(run.perTick, renderResult(q.LastResult()))
	}
	run.actions = q.Actions().Len()
	for _, fp := range peers {
		for _, d := range fp.messenger.Outbox() {
			run.deliveries = append(run.deliveries, d.Address+"|"+d.Text)
		}
	}
	sort.Strings(run.deliveries)
	return run
}

func waitForPEMS(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestFederatedNodeLossMasking is the chaos harness's in-process variant:
// a coordinator spanning two replicated peers loses one peer mid-run —
// once the sensor owner (passive β failover), once the messenger owner
// (active β re-route) — and every observable of the run must equal a
// never-crashed control: per-tick results, the Definition 8 action count,
// and the exact multiset of physical deliveries (no alert lost, none
// duplicated).
func TestFederatedNodeLossMasking(t *testing.T) {
	control := runFederatedScenario(t, "")
	if len(control.deliveries) == 0 {
		t.Fatal("control run produced no deliveries; scenario is vacuous")
	}
	for _, killRef := range []string{"sensor06", "email"} {
		chaos := runFederatedScenario(t, killRef)
		if len(chaos.perTick) != len(control.perTick) {
			t.Fatalf("kill %s: tick counts differ", killRef)
		}
		for i := range control.perTick {
			if chaos.perTick[i] != control.perTick[i] {
				t.Errorf("kill %s: tick %d diverged:\n control %q\n chaos   %q",
					killRef, i+1, control.perTick[i], chaos.perTick[i])
			}
		}
		if chaos.actions != control.actions {
			t.Errorf("kill %s: actions = %d, control %d", killRef, chaos.actions, control.actions)
		}
		if got, want := strings.Join(chaos.deliveries, ","), strings.Join(control.deliveries, ","); got != want {
			t.Errorf("kill %s: deliveries = %s, control %s", killRef, got, want)
		}
	}
}

// TestActiveOutcomeUnknownPinsDelivery kills the messenger owner AFTER it
// received an active invocation but before it answered: the outcome is
// unknown, so the tuple must be pinned — never re-fired on the surviving
// replica — even though the effect may have (and here, does) occur on the
// dying node. At-most-once beats at-least-once for Definition 8 effects.
func TestActiveOutcomeUnknownPinsDelivery(t *testing.T) {
	bus := discovery.NewInProcBus()
	p := pems.New(pems.WithDiscovery(bus,
		discovery.WithLease(2*time.Second),
		discovery.WithDialTimeout(time.Second)))
	defer p.Close()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	peers := map[string]*fedPeer{}
	for _, name := range []string{"pin-A", "pin-B"} {
		fp := newFedPeer(t, bus, name)
		fp.messenger.SetLatency(250 * time.Millisecond)
		peers[name] = fp
	}
	waitForPEMS(t, "both messenger replicas discovered", func() bool {
		return len(p.Registry().ProviderNodes("email")) == 2
	})
	if err := p.ExecuteDDL(`
		EXTENDED RELATION contacts (
		  name STRING, address STRING, text STRING VIRTUAL,
		  messenger SERVICE, sent BOOLEAN VIRTUAL
		) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
		INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("pin",
		`invoke[sendMessage](assign[text := "pinned"](contacts))`, false); err != nil {
		t.Fatal(err)
	}
	// FailFast would abort the tick; SKIP lets the unknown-outcome tuple be
	// pinned and the evaluation proceed (the paper's graceful degradation).
	if err := p.SetQueryDegradation("pin", resilience.SkipTuple); err != nil {
		t.Fatal(err)
	}

	owner := p.Registry().ProviderNodes("email")[0]
	survivor := "pin-A"
	if owner == "pin-A" {
		survivor = "pin-B"
	}
	// Kill the owner while its messenger is sleeping on our request.
	go func() {
		time.Sleep(80 * time.Millisecond)
		peers[owner].kill()
	}()
	for at := 1; at <= 5; at++ {
		if _, err := p.Tick(); err != nil {
			t.Fatalf("tick %d: %v", at, err)
		}
	}
	if got := peers[survivor].messenger.Outbox(); len(got) != 0 {
		t.Fatalf("outcome-unknown invocation was re-fired on the survivor: %v", got)
	}
	// The dying node's handler ran to completion: the effect occurred once.
	// (It may also have been lost entirely — both are legal under
	// at-most-once; what is illegal is a duplicate.)
	if got := len(peers[owner].messenger.Outbox()); got > 1 {
		t.Fatalf("owner delivered %d times, want at most 1", got)
	}
}

// TestSysPeersRelation drives the sys$peers system relation and the .peers
// /debug/peers surfaces: an alive federated peer appears with its service
// count, and a silently dead peer flips to down/lease_expired — all
// edge-triggered through the telemetry scraper.
func TestSysPeersRelation(t *testing.T) {
	bus := discovery.NewInProcBus()
	p := pems.New(pems.WithDiscovery(bus,
		discovery.WithLease(150*time.Millisecond),
		discovery.WithDialTimeout(time.Second)))
	defer p.Close()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	tel, err := p.EnableSelfTelemetry(cq.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp := newFedPeer(t, bus, "peer-T")
	waitForPEMS(t, "peer discovered", func() bool {
		return len(p.Registry().ProviderNodes("sensor06")) == 1
	})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	rows := tel.PeersRelation().Current()
	if len(rows) != 1 || rows[0][0].Str() != "peer-T" || rows[0][1].Str() != discovery.PeerAlive {
		t.Fatalf("sys$peers alive rows = %v", rows)
	}
	if rows[0][3].Int() != 2 { // sensor06 + email
		t.Fatalf("sys$peers services = %d, want 2", rows[0][3].Int())
	}
	txt := p.PeersReportText()
	if !strings.Contains(txt, "peer-T") || !strings.Contains(txt, discovery.PeerAlive) {
		t.Fatalf(".peers text missing peer: %q", txt)
	}

	// The peer dies silently; the lease sweeper masks it and the next tick
	// flips the row to down/lease_expired.
	fp.kill()
	waitForPEMS(t, "lease expiry", func() bool {
		peers := p.Discovery().Peers()
		return len(peers) == 1 && peers[0].State == discovery.PeerDown
	})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	rows = tel.PeersRelation().Current()
	if len(rows) != 1 || rows[0][1].Str() != discovery.PeerDown {
		t.Fatalf("sys$peers down rows = %v", rows)
	}
	rep := p.PeersReport()
	if !rep.Enabled || len(rep.Peers) != 1 || rep.Peers[0].Reason != "lease_expired" {
		t.Fatalf("PeersReport = %+v", rep)
	}
}
