package pems_test

import (
	"strings"
	"testing"
	"time"

	"serena/internal/pems"
	"serena/internal/resilience"
	"serena/internal/value"
)

// TestOverloadFacade drives the end-to-end overload surface through PEMS:
// DDL-declared ingest buffer, Offer/drain on tick, tick budget + overruns,
// and the report the shell's .overload command prints.
func TestOverloadFacade(t *testing.T) {
	p := pems.New()
	defer p.Close()
	const ddlSrc = `
EXTENDED RELATION readings ( v INTEGER ) ON OVERLOAD SHED_NEWEST CAPACITY 2;
`
	if err := p.ExecuteDDL(ddlSrc); err != nil {
		t.Fatal(err)
	}
	// The DDL clause installed the buffer: offers beyond capacity shed.
	for i := 0; i < 5; i++ {
		if err := p.Offer("readings", value.Tuple{value.NewInt(int64(i))}); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	at := p.Now()
	rel, err := p.Env(at).Relation("readings")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("drained %d tuples, want 2 (capacity)", rel.Len())
	}

	// Reconfigure programmatically and exercise budget + report.
	if err := p.SetOverloadPolicy("readings", resilience.ShedOldest, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOverloadPolicy("ghost", resilience.Block, 1); err == nil {
		t.Fatal("unknown relation accepted")
	}
	p.SetTickBudget(time.Nanosecond)
	p.SetOverloadCoalescing(true)
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	if p.TickOverruns() == 0 {
		t.Fatal("1ns budget produced no overruns")
	}

	rep := p.OverloadReport()
	for _, want := range []string{"tick budget:", "1ns", "coalescing: true", "readings", "SHED_OLDEST", "shed 3", "admission:      off"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	p.SetAdmissionLimit(4, 2, time.Millisecond)
	if rep := p.OverloadReport(); !strings.Contains(rep, "in-flight 0, queued 0, rejected 0") {
		t.Fatalf("admission line missing:\n%s", rep)
	}
}
