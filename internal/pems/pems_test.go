package pems_test

import (
	"strings"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/pems"
	"serena/internal/schema"
	"serena/internal/value"
)

// table1Prototypes declares the paper's Table 1 prototypes.
const table1Prototypes = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );
`

// scenarioTables declares contacts, cameras and surveillance with their
// Section 1.2/5.2 data.
const scenarioTables = `
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);
EXTENDED RELATION surveillance ( name STRING, location STRING );
INSERT INTO contacts VALUES
  ("Nicolas", "nicolas@elysee.fr", email),
  ("Carla", "carla@elysee.fr", email),
  ("Francois", "francois@im.gouv.fr", jabber);
INSERT INTO cameras VALUES
  (camera01, "corridor"), (camera02, "office"), (webcam07, "roof");
INSERT INTO surveillance VALUES
  ("Carla", "office"), ("Nicolas", "corridor"), ("Francois", "roof");
`

// localDevices registers the paper's nine devices directly in the central
// registry (single-process deployment).
func localDevices(t *testing.T, p *pems.PEMS) (sensors map[string]*device.Sensor, messengers map[string]*device.Messenger, cameras map[string]*device.Camera) {
	t.Helper()
	sensors = map[string]*device.Sensor{}
	messengers = map[string]*device.Messenger{}
	cameras = map[string]*device.Camera{}
	for _, s := range []struct {
		ref, loc string
		base     float64
	}{
		{"sensor01", "corridor", 19}, {"sensor06", "office", 21},
		{"sensor07", "office", 22}, {"sensor22", "roof", 15},
	} {
		d := device.NewSensor(s.ref, s.loc, s.base)
		sensors[s.ref] = d
		if err := p.Registry().Register(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"email", "jabber"} {
		d := device.NewMessenger(m, m)
		messengers[m] = d
		if err := p.Registry().Register(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct {
		ref, area string
		q         int64
	}{{"camera01", "corridor", 8}, {"camera02", "office", 7}, {"webcam07", "roof", 5}} {
		d := device.NewCamera(c.ref, c.area, c.q, 0.2)
		cameras[c.ref] = d
		if err := p.Registry().Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return sensors, messengers, cameras
}

func locationOf(sensors map[string]*device.Sensor) func(string) []value.Value {
	return func(ref string) []value.Value {
		if s, ok := sensors[ref]; ok {
			return []value.Value{value.NewString(s.Location())}
		}
		return []value.Value{value.NewString("unknown")}
	}
}

func newScenarioPEMS(t *testing.T) (*pems.PEMS, map[string]*device.Sensor, map[string]*device.Messenger, map[string]*device.Camera) {
	t.Helper()
	p := pems.New()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	sensors, messengers, cameras := localDevices(t, p)
	if err := p.ExecuteDDL(scenarioTables); err != nil {
		t.Fatal(err)
	}
	locAttr := []schema.Attribute{{Name: "location", Type: value.String}}
	if _, err := p.AddPollStream("temperatures", "getTemperature", "sensor", locAttr, locationOf(sensors)); err != nil {
		t.Fatal(err)
	}
	return p, sensors, messengers, cameras
}

// TestScenarioSurveillance reproduces the paper's Section 5.2 experiment:
// four XD-Relations, a continuous query alerting the manager of an area
// when its temperature exceeds the threshold, and live integration of a
// newly discovered sensor without stopping the query.
func TestScenarioSurveillance(t *testing.T) {
	p, sensors, messengers, _ := newScenarioPEMS(t)
	// Alert the area's manager when its temperature exceeds 28 °C
	// ("Carla wants to know when the temperature in the office exceeds 28").
	const alertQ = `invoke[sendMessage](assign[text := "Temperature alert!"](
		join(contacts, join(surveillance,
			select[temperature > 28.0](window[1](temperatures))))))`
	q, err := p.RegisterQuery("alerts", alertQ, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(messengers["email"].Outbox()) != 0 {
		t.Fatal("no alerts expected while temperatures are nominal")
	}
	// Heat the office sensor over the threshold for a while.
	sensors["sensor06"].Heat(device.HeatEvent{From: 4, To: 20, Delta: 10}) // 21 → 31 °C
	if err := p.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	emails := messengers["email"].Outbox()
	// Carla manages the office → exactly one alert to her, fired once.
	if len(emails) != 1 || emails[0].Address != "carla@elysee.fr" {
		t.Fatalf("email outbox = %v", emails)
	}
	if len(messengers["jabber"].Outbox()) != 0 {
		t.Fatal("only the office manager should be alerted")
	}
	if q.Actions().Len() != 1 {
		t.Fatalf("actions = %s", q.Actions())
	}

	// §5.2 live discovery: a new hot sensor in the roof area appears; the
	// roof manager (Francois, via jabber) is alerted without re-registering
	// the query.
	hot := device.NewSensor("sensor99", "roof", 35)
	if err := p.Registry().Register(hot); err != nil {
		t.Fatal(err)
	}
	sensors["sensor99"] = hot
	if err := p.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	jabbers := messengers["jabber"].Outbox()
	if len(jabbers) != 1 || jabbers[0].Address != "francois@im.gouv.fr" {
		t.Fatalf("jabber outbox = %v", jabbers)
	}
}

// TestScenarioSurveillancePhotos extends the scenario with the camera leg:
// a photo stream of too-cold areas (Q4 style) over the DDL-declared
// environment.
func TestScenarioSurveillancePhotos(t *testing.T) {
	p, sensors, _, cameras := newScenarioPEMS(t)
	const photoQ = `stream[insertion](project[photo](invoke[takePhoto](invoke[checkPhoto](
		join(cameras, rename[location -> area](
			select[temperature < 12.0](window[1](temperatures))))))))`
	q, err := p.RegisterQuery("photos", photoQ, false)
	if err != nil {
		t.Fatal(err)
	}
	sensors["sensor22"].Heat(device.HeatEvent{From: 2, To: 5, Delta: -5}) // roof 15 → 10 °C
	if err := p.RunUntil(7); err != nil {
		t.Fatal(err)
	}
	if q.Output().EventCount() != 1 {
		t.Fatalf("photo stream events = %d, want 1", q.Output().EventCount())
	}
	if cameras["webcam07"].Shots() != 1 {
		t.Fatal("roof camera should have shot once")
	}
}

// TestScenarioRSS reproduces the paper's second Section 5.2 experiment:
// RSS wrapper services polled into a stream, keyword filtering over a
// one-hour window, and forwarding matches to a contact.
func TestScenarioRSS(t *testing.T) {
	p := pems.New()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	if err := p.Catalog().Registry().RegisterPrototype(device.GetItemsProto()); err != nil {
		t.Fatal(err)
	}
	_, messengers, _ := localDevices(t, p)
	if err := p.ExecuteDDL(scenarioTables); err != nil {
		t.Fatal(err)
	}
	// Three newspapers publishing one item every 5 instants; every third
	// item mentions Obama.
	for _, f := range []struct{ ref, name string }{
		{"lemonde", "Le Monde"}, {"lefigaro", "Le Figaro"}, {"cnn", "CNN Europe"},
	} {
		if err := p.Registry().Register(device.NewFeed(f.ref, f.name, 5, []string{"Obama"})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AddFeedStream("news"); err != nil {
		t.Fatal(err)
	}
	// One-hour window (3600 instants) over matching items.
	watch, err := p.RegisterQuery("obamaNews",
		`select[title contains "Obama"](window[3600](news))`, false)
	if err != nil {
		t.Fatal(err)
	}
	// Forward matches to Carla.
	fwd, err := p.RegisterQuery("forward",
		`invoke[sendMessage](assign[text := title](join(
			select[name = "Carla"](contacts),
			project[title](select[title contains "Obama"](window[3600](news))))))`, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	// Items per feed by tick 30: seq 0..6 (period 5); matching seqs 0, 3, 6
	// → 3 matches per feed, 9 total.
	if got := watch.LastResult().Len(); got != 9 {
		t.Fatalf("window result = %d matching items, want 9", got)
	}
	out := messengers["email"].Outbox()
	if len(out) != 9 {
		t.Fatalf("forwarded messages = %d, want 9 (one per item, once)", len(out))
	}
	for _, d := range out {
		if d.Address != "carla@elysee.fr" || !strings.Contains(d.Text, "Obama") {
			t.Fatalf("delivery = %+v", d)
		}
	}
	_ = fwd
}

// TestFigure1Architecture reproduces Figure 1 over real TCP: a core PEMS
// discovers two Local ERM nodes (sensors on one, actuators on the other),
// and a continuous query drives remote invocations end to end.
func TestFigure1Architecture(t *testing.T) {
	bus := discovery.NewInProcBus()
	p := pems.New(pems.WithDiscovery(bus, discovery.WithDialTimeout(2*time.Second)))
	defer p.Close()
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}

	// Local ERM A: temperature sensors.
	nodeA := discovery.NewNode("node-sensors", bus)
	if err := nodeA.Registry().RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	officeSensor := device.NewSensor("sensor06", "office", 21)
	if err := nodeA.Registry().Register(officeSensor); err != nil {
		t.Fatal(err)
	}
	if err := nodeA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer nodeA.Stop()

	// Local ERM B: messengers.
	nodeB := discovery.NewNode("node-actuators", bus)
	if err := nodeB.Registry().RegisterPrototype(device.SendMessageProto()); err != nil {
		t.Fatal(err)
	}
	email := device.NewMessenger("email", "email")
	if err := nodeB.Registry().Register(email); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer nodeB.Stop()

	// Wait for discovery to register both remote services centrally.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Registry().Refs()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.Registry().Refs(); len(got) != 2 {
		t.Fatalf("discovered services = %v", got)
	}

	// Declare the environment and a continuous alert query.
	if err := p.ExecuteDDL(`
		EXTENDED RELATION contacts (
		  name STRING, address STRING, text STRING VIRTUAL,
		  messenger SERVICE, sent BOOLEAN VIRTUAL
		) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
		INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);`); err != nil {
		t.Fatal(err)
	}
	locAttr := []schema.Attribute{{Name: "location", Type: value.String}}
	if _, err := p.AddPollStream("temperatures", "getTemperature", "sensor", locAttr,
		func(string) []value.Value { return []value.Value{value.NewString("office")} }); err != nil {
		t.Fatal(err)
	}
	q, err := p.RegisterQuery("alerts",
		`invoke[sendMessage](assign[text := "Hot!"](join(contacts,
			select[temperature > 28.0](window[1](temperatures)))))`, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	officeSensor.Heat(device.HeatEvent{From: 3, To: 10, Delta: 15})
	if err := p.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	// The alert crossed the wire to node B's messenger.
	out := email.Outbox()
	if len(out) != 1 || out[0].Address != "carla@elysee.fr" || out[0].Text != "Hot!" {
		t.Fatalf("remote outbox = %v", out)
	}
	if q.Actions().Len() != 1 {
		t.Fatalf("actions = %s", q.Actions())
	}
	// Sensor node withdrawal stops the stream but not the system.
	_ = nodeA.Stop()
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Registry().Implementing("getTemperature")) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.RunUntil(9); err != nil {
		t.Fatal(err)
	}
	if len(email.Outbox()) != 1 {
		t.Fatal("no further alerts after the sensor node left")
	}
}

func TestDiscoveryRelation(t *testing.T) {
	p, sensors, _, _ := newScenarioPEMS(t)
	rel, err := p.AddDiscoveryRelation(
		schema.MustExtended("livesensors", []schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
		}, nil),
		"sensor", "getTemperature", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if got := len(rel.Current()); got != 4 {
		t.Fatalf("discovery relation rows = %d, want 4", got)
	}
	// A sensor disappears.
	if err := p.Registry().Unregister("sensor22"); err != nil {
		t.Fatal(err)
	}
	delete(sensors, "sensor22")
	if err := p.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if got := len(rel.Current()); got != 3 {
		t.Fatalf("after withdrawal rows = %d, want 3", got)
	}
	// Validation paths.
	if _, err := p.AddDiscoveryRelation(schema.MustExtended("bad", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "x", Type: value.Int}, Virtual: true},
		{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
	}, nil), "x", "getTemperature", nil); err == nil {
		t.Fatal("virtual service attribute accepted")
	}
	if _, err := p.AddDiscoveryRelation(schema.MustExtended("bad2", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
	}, nil), "sensor", "ghostProto", nil); err == nil {
		t.Fatal("unknown prototype accepted")
	}
}

func TestOneShotQueries(t *testing.T) {
	p, _, messengers, _ := newScenarioPEMS(t)
	// Q1 one-shot over the DDL environment.
	res, err := p.OneShot(`invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"](contacts)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 || res.Actions.Len() != 2 {
		t.Fatalf("one-shot Q1 = %d rows, %s", res.Relation.Len(), res.Actions)
	}
	if len(messengers["email"].Outbox()) != 1 {
		t.Fatal("one-shot side effects missing")
	}
	// Parse errors and planning errors are reported.
	if _, err := p.OneShot(`select[`); err == nil {
		t.Fatal("bad SAL accepted")
	}
	if _, err := p.OneShot(`select[ghost = 1](contacts)`); err == nil {
		t.Fatal("bad formula accepted")
	}
}

func TestRegisterQueryWithOptimization(t *testing.T) {
	p, sensors, messengers, _ := newScenarioPEMS(t)
	_ = sensors
	// A query with a pushable selection above a passive invoke — registered
	// with optimization, it must behave identically.
	q, err := p.RegisterQuery("opt",
		`select[area = "office"](invoke[checkPhoto](cameras))`, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Plan().String(), `invoke[checkPhoto](select[area = "office"]`) {
		t.Fatalf("selection not pushed: %s", q.Plan())
	}
	if err := p.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if q.LastResult().Len() != 1 {
		t.Fatalf("optimized result = %d", q.LastResult().Len())
	}
	_ = messengers
}

func TestDDLStampedAtNextTick(t *testing.T) {
	p, _, _, _ := newScenarioPEMS(t)
	if err := p.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	// Insert while the clock is at 5: visible at tick 6.
	if err := p.ExecuteDDL(`INSERT INTO contacts VALUES ("Zoe", "zoe@x", email);`); err != nil {
		t.Fatal(err)
	}
	res, err := p.OneShot(`project[name](contacts)`) // snapshot at instant 5
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("insert visible too early: %d rows", res.Relation.Len())
	}
	if err := p.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	res, _ = p.OneShot(`project[name](contacts)`)
	if res.Relation.Len() != 4 {
		t.Fatalf("insert not visible at next tick: %d rows", res.Relation.Len())
	}
}
