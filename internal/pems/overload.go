package pems

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"serena/internal/resilience"
	"serena/internal/value"
)

// SetTickBudget declares how long one tick may take before it counts as an
// overrun. When coalescing is enabled (SetOverloadCoalescing) the instant
// after an overrun evaluates only queries whose results feed an action —
// passive-only queries skip one instant and catch up on the next. Zero
// disables the budget.
func (p *PEMS) SetTickBudget(d time.Duration) {
	p.mu.Lock()
	p.tickBudget = d
	p.mu.Unlock()
	p.exec.SetTickBudget(d)
}

// SetOverloadCoalescing toggles passive-query coalescing after a tick
// overrun. Queries containing an active invocation — or feeding one
// downstream — are NEVER skipped: the action set under overload stays
// exactly what it would have been unloaded (Definition 8 is load-invariant).
func (p *PEMS) SetOverloadCoalescing(on bool) {
	p.mu.Lock()
	p.coalescing = on
	p.mu.Unlock()
	p.exec.SetOverloadCoalescing(on)
}

// TickOverruns reports how many ticks have exceeded the budget.
func (p *PEMS) TickOverruns() int64 { return p.exec.TickOverruns() }

// SetAdmissionLimit caps concurrent physical service invocations through
// the central registry: maxInFlight run at once, up to maxQueue more wait
// at most queueTimeout, everyone else fails fast with
// resilience.ErrOverloaded (absorbed by each query's degradation policy).
// maxInFlight <= 0 removes the limit.
func (p *PEMS) SetAdmissionLimit(maxInFlight, maxQueue int, queueTimeout time.Duration) {
	p.registry.SetAdmissionLimit(maxInFlight, maxQueue, queueTimeout)
}

// SetOverloadPolicy installs (or reconfigures) a bounded ingest buffer on a
// relation — the programmatic form of the DDL's ON OVERLOAD clause.
// Producers then feed the relation through Offer instead of direct inserts
// and the buffer absorbs bursts: BLOCK applies backpressure, SHED_OLDEST /
// SHED_NEWEST drop tuples (counted in .metrics) once capacity is reached.
func (p *PEMS) SetOverloadPolicy(relation string, policy resilience.OverloadPolicy, capacity int) error {
	x, ok := p.exec.Relation(relation)
	if !ok {
		return fmt.Errorf("pems: unknown relation %q", relation)
	}
	x.SetOverloadPolicy(policy, capacity)
	return nil
}

// Offer hands a tuple to a relation's bounded ingest buffer; it is drained
// into the relation at the start of the next tick. The relation must have
// an overload policy (ON OVERLOAD DDL clause or SetOverloadPolicy).
func (p *PEMS) Offer(relation string, t value.Tuple) error {
	x, ok := p.exec.Relation(relation)
	if !ok {
		return fmt.Errorf("pems: unknown relation %q", relation)
	}
	return x.Offer(t)
}

// OverloadReport renders the live overload posture of this PEMS: tick
// budget and overruns, per-query coalescing, admission-limiter occupancy
// and every bounded ingest buffer's depth and shed counts. The serena
// shell's .overload command prints it.
func (p *PEMS) OverloadReport() string {
	p.mu.Lock()
	budget, coalescing := p.tickBudget, p.coalescing
	p.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "tick budget:    %s", durationOrOff(budget))
	fmt.Fprintf(&b, "   overruns: %d   coalescing: %v\n", p.exec.TickOverruns(), coalescing)

	inFlight, queued, rejected, enabled := p.registry.AdmissionStats()
	if enabled {
		fmt.Fprintf(&b, "admission:      in-flight %d, queued %d, rejected %d\n", inFlight, queued, rejected)
	} else {
		b.WriteString("admission:      off\n")
	}

	names := p.exec.RelationNames()
	sort.Strings(names)
	any := false
	for _, name := range names {
		x, ok := p.exec.Relation(name)
		if !ok {
			continue
		}
		pol, capacity, on := x.OverloadPolicy()
		if !on {
			continue
		}
		if !any {
			b.WriteString("ingest buffers:\n")
			any = true
		}
		offered, shed := x.IngestStats()
		fmt.Fprintf(&b, "  %-16s %s cap %d   depth %d   offered %d   shed %d\n",
			name, pol, capacity, x.IngestDepth(), offered, shed)
	}
	if !any {
		b.WriteString("ingest buffers: none\n")
	}

	qnames := p.exec.QueryNames()
	sort.Strings(qnames)
	any = false
	for _, name := range qnames {
		q, ok := p.exec.Query(name)
		if !ok {
			continue
		}
		if n := q.Coalesced(); n > 0 {
			if !any {
				b.WriteString("coalesced evaluations:\n")
				any = true
			}
			fmt.Fprintf(&b, "  %-16s %d\n", name, n)
		}
	}
	return b.String()
}

func durationOrOff(d time.Duration) string {
	if d <= 0 {
		return "off"
	}
	return d.String()
}
