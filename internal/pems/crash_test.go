package pems_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/service"
	"serena/internal/value"
	"serena/internal/wal"
)

// The crash harness re-executes this test binary as a child running a
// durable PEMS under a fast real-time ticker, SIGKILLs it at a randomized
// point mid-flight, restarts it, and finally verifies the recovered
// environment against a never-crashed control run: identical window
// contents, identical action sets, and — the effectful-once guarantee —
// no active invocation physically fired twice, proven by a side-effect
// file the active service appends to on every real call.

// crashTablesDDL declares the crash scenario: one contact reached over an
// ACTIVE binding pattern.
const crashTablesDDL = `
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);
`

// Every third feed item mentions Obama, so each matching item is a NEW
// (address, title) input for the active β — the action set grows over
// time, giving the kill points plenty of intents to land between.
const (
	crashWatchQ   = `select[title contains "Obama"](window[3600](news))`
	crashForwardQ = `invoke[sendMessage](assign[text := title](join(
		select[name = "Carla"](contacts),
		project[title](select[title contains "Obama"](window[3600](news))))))`
	// digest keeps the incremental evaluator's stateful operators loaded at
	// every kill point: a ⋈ whose probe indexes grow each instant (recently
	// active feeds against the long item window) feeding per-group
	// count/min/max accumulators. None of that operator state is
	// checkpointed — recovery must rebuild it from the WAL-replayed event
	// logs and still match the never-crashed control bit-for-bit.
	crashDigestQ = `aggregate[count(*) as total, min(published) as first, max(published) as latest by feed](
		join(project[feed](window[2](news)), window[3600](news)))`
	// rollup materializes its matches INTO a named derived relation that a
	// second query then reads as a base — the cascade must recover to
	// control-equal contents even when kills land between the producer's
	// tick and the consumer's.
	crashRollupDDL = `REGISTER QUERY rollup INTO obamamat RETAIN 64 INSTANTS
		AS select[title contains "Obama"](window[3600](news));`
	crashReaderQ = `project[title](obamamat)`
)

// fileMessenger implements sendMessage by appending one line per physical
// delivery to a side file — effects that survive SIGKILL, unlike an
// in-memory outbox, so the parent can count real fires across lives.
type fileMessenger struct {
	ref  string
	path string
}

func (m *fileMessenger) Ref() string              { return m.ref }
func (m *fileMessenger) PrototypeNames() []string { return []string{"sendMessage"} }
func (m *fileMessenger) Implements(p string) bool { return p == "sendMessage" }

func (m *fileMessenger) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if proto != "sendMessage" {
		return nil, fmt.Errorf("%w: %s on %s", service.ErrNotImplemented, proto, m.ref)
	}
	f, err := os.OpenFile(m.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%s|%s\n", input[0].Str(), input[1].Str()); err != nil {
		return nil, err
	}
	return []value.Tuple{{value.NewBool(true)}}, nil
}

// buildCrashEnv assembles the durable crash environment — the exact same
// steps in the child, in every restarted life, and in the final
// verification pass.
func buildCrashEnv(dir, side string) (*pems.PEMS, wal.Info, error) {
	p := pems.New()
	if err := p.EnableDurability(dir, wal.Options{Fsync: wal.SyncInterval, CheckpointEvery: 10}); err != nil {
		return nil, wal.Info{}, err
	}
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		return nil, wal.Info{}, err
	}
	if err := p.Catalog().Registry().RegisterPrototype(device.GetItemsProto()); err != nil {
		return nil, wal.Info{}, err
	}
	if err := p.Registry().Register(&fileMessenger{ref: "email", path: side}); err != nil {
		return nil, wal.Info{}, err
	}
	if err := p.Registry().Register(device.NewFeed("lemonde", "Le Monde", 2, []string{"Obama"})); err != nil {
		return nil, wal.Info{}, err
	}
	if _, err := p.AddFeedStream("news"); err != nil {
		return nil, wal.Info{}, err
	}
	// System relations active during the crash runs: they must never leak
	// into the WAL or checkpoints, and recovery must replay identically
	// with the scraper installed.
	if _, err := p.EnableSelfTelemetry(cq.TelemetryOptions{}); err != nil {
		return nil, wal.Info{}, err
	}
	info, err := p.Recover()
	if err != nil {
		return nil, wal.Info{}, err
	}
	if info.Fresh {
		if err := p.ExecuteDDL(crashTablesDDL); err != nil {
			return nil, wal.Info{}, err
		}
		if _, err := p.RegisterQuery("watch", crashWatchQ, false); err != nil {
			return nil, wal.Info{}, err
		}
		if _, err := p.RegisterQuery("forward", crashForwardQ, false); err != nil {
			return nil, wal.Info{}, err
		}
		if _, err := p.RegisterQuery("digest", crashDigestQ, false); err != nil {
			return nil, wal.Info{}, err
		}
		if err := p.ExecuteDDL(crashRollupDDL); err != nil {
			return nil, wal.Info{}, err
		}
		if _, err := p.RegisterQuery("mreader", crashReaderQ, false); err != nil {
			return nil, wal.Info{}, err
		}
	}
	return p, info, nil
}

// controlEnv runs the identical scenario with no durability and no
// crashes: the ground truth for instant-for-instant comparison.
func controlEnv(t *testing.T, side string) *pems.PEMS {
	t.Helper()
	p := pems.New()
	t.Cleanup(p.Close)
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	if err := p.Catalog().Registry().RegisterPrototype(device.GetItemsProto()); err != nil {
		t.Fatal(err)
	}
	if err := p.Registry().Register(&fileMessenger{ref: "email", path: side}); err != nil {
		t.Fatal(err)
	}
	if err := p.Registry().Register(device.NewFeed("lemonde", "Le Monde", 2, []string{"Obama"})); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddFeedStream("news"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableSelfTelemetry(cq.TelemetryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(crashTablesDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("watch", crashWatchQ, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("forward", crashForwardQ, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("digest", crashDigestQ, false); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(crashRollupDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("mreader", crashReaderQ, false); err != nil {
		t.Fatal(err)
	}
	return p
}

// crashChild is the re-executed child process: build the durable
// environment, tick as fast as possible, run until killed.
func crashChild() {
	dir, side := os.Getenv("SERENA_CRASH_DIR"), os.Getenv("SERENA_CRASH_SIDE")
	p, _, err := buildCrashEnv(dir, side)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	if err := p.StartTicker(2*time.Millisecond, func(error) {}); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	select {} // hold until SIGKILL
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if os.Getenv("SERENA_CRASH_CHILD") == "1" {
		crashChild()
		return
	}
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	// CRASH_DATA_DIR keeps the data dir and side file outside the test's
	// temp tree so CI can upload them as an artifact when the run fails.
	root := os.Getenv("CRASH_DATA_DIR")
	if root == "" {
		root = t.TempDir()
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "data")
	side := filepath.Join(root, "sends.log")
	iters := 3
	if s := os.Getenv("CRASH_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			iters = n
		}
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < iters; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashRecoverySIGKILL$")
		cmd.Env = append(os.Environ(),
			"SERENA_CRASH_CHILD=1", "SERENA_CRASH_DIR="+dir, "SERENA_CRASH_SIDE="+side)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Randomized kill point: mid-tick, mid-recovery, mid-checkpoint —
		// wherever the clock lands.
		time.Sleep(time.Duration(40+rng.Intn(100)) * time.Millisecond)
		_ = cmd.Process.Kill()
		err := cmd.Wait()
		if err == nil {
			t.Fatalf("iteration %d: child exited cleanly before the kill:\n%s", i, out.String())
		}
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() != -1 {
			t.Fatalf("iteration %d: child died on its own (%v):\n%s", i, err, out.String())
		}
	}

	// Final life: recover, then run two more instants so any β whose intent
	// never became durable is re-evaluated and fired live.
	p, info, err := buildCrashEnv(dir, side)
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	defer p.Close()
	if info.Fresh {
		t.Fatalf("nothing survived %d crashed lives (kills landed before the first flush?)", iters)
	}
	target := p.Now() + 2
	if err := p.RunUntil(target); err != nil {
		t.Fatal(err)
	}

	ctl := controlEnv(t, filepath.Join(t.TempDir(), "control-sends.log"))
	if err := ctl.RunUntil(target); err != nil {
		t.Fatal(err)
	}

	// The passive query must match the control instant-for-instant: windows
	// and stream history recompute deterministically.
	watchR, ok := p.Executor().Query("watch")
	if !ok {
		t.Fatal("watch query lost across crashes")
	}
	watchC, _ := ctl.Executor().Query("watch")
	if !watchR.LastResult().EqualContents(watchC.LastResult()) {
		t.Errorf("watch at instant %d: recovered result differs from control\n recovered: %s\n control:   %s",
			target, watchR.LastResult(), watchC.LastResult())
	}

	// The active query is at-most-once: a β orphaned between its durable
	// intent and its result is pinned as attempted with unknown outcome, so
	// its output row may be absent — but never invented, and its action is
	// still in the set. Hence: recovered rows ⊆ control rows, action sets
	// exactly equal.
	fwdR, ok := p.Executor().Query("forward")
	if !ok {
		t.Fatal("forward query lost across crashes")
	}
	fwdC, _ := ctl.Executor().Query("forward")
	for _, row := range fwdR.LastResult().Tuples() {
		if !fwdC.LastResult().Contains(row) {
			t.Errorf("forward: recovered row never exists in the control run: %s", row)
		}
	}
	if !fwdR.Actions().Equal(fwdC.Actions()) {
		t.Errorf("forward: recovered action set differs from control\n recovered: %s\n control:   %s",
			fwdR.Actions(), fwdC.Actions())
	}
	if missing := fwdC.LastResult().Len() - fwdR.LastResult().Len(); missing > 0 {
		t.Logf("forward: %d row(s) absent vs control (orphaned β, at-most-once)", missing)
	}

	// The join + aggregate query recovered mid-flight: its probe indexes
	// and per-group accumulators existed only in memory when the kills
	// landed, so matching the control proves the incremental evaluator
	// rebuilt them from the WAL-replayed relations — and kept using the
	// delta path afterwards, not a silent naive fallback.
	digR, ok := p.Executor().Query("digest")
	if !ok {
		t.Fatal("digest query lost across crashes")
	}
	digC, _ := ctl.Executor().Query("digest")
	if !digR.LastResult().EqualContents(digC.LastResult()) {
		t.Errorf("digest at instant %d: recovered aggregate differs from control\n recovered: %s\n control:   %s",
			target, digR.LastResult(), digC.LastResult())
	}
	if got := digR.EvaluationMode(); got != "delta" {
		t.Errorf("recovered digest runs %q, want delta", got)
	}
	if d, _ := digR.EvalCounts(); d == 0 {
		t.Error("recovered digest never took a delta tick")
	}

	// The materialized cascade: the INTO relation itself must recover to the
	// control's exact contents (replay re-derives it from the producer; the
	// logged events for it are skipped, so nothing double-applies), and the
	// consumer reading it as a base must agree too.
	rollR, ok := p.Executor().Query("rollup")
	if !ok {
		t.Fatal("rollup query lost across crashes")
	}
	if rollR.Into() != "obamamat" || rollR.Retain() != 64 {
		t.Errorf("rollup INTO/RETAIN lost: into=%q retain=%d", rollR.Into(), rollR.Retain())
	}
	rollC, _ := ctl.Executor().Query("rollup")
	if !rollR.LastResult().EqualContents(rollC.LastResult()) {
		t.Errorf("rollup at instant %d: recovered result differs from control\n recovered: %s\n control:   %s",
			target, rollR.LastResult(), rollC.LastResult())
	}
	matR, ok := p.Executor().Relation("obamamat")
	if !ok {
		t.Fatal("materialized relation lost across crashes")
	}
	matC, _ := ctl.Executor().Relation("obamamat")
	if got, want := len(matR.Current()), len(matC.Current()); got != want {
		t.Errorf("obamamat: recovered %d rows, control has %d", got, want)
	}
	mrdR, ok := p.Executor().Query("mreader")
	if !ok {
		t.Fatal("mreader query lost across crashes")
	}
	mrdC, _ := ctl.Executor().Query("mreader")
	if !mrdR.LastResult().EqualContents(mrdC.LastResult()) {
		t.Errorf("mreader at instant %d: recovered result differs from control\n recovered: %s\n control:   %s",
			target, mrdR.LastResult(), mrdC.LastResult())
	}

	// The effectful-once guarantee: across all lives, no (address, text)
	// input was physically delivered twice, and nothing was delivered that
	// the control never delivers.
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatalf("no physical deliveries recorded: %v", err)
	}
	allowed := map[string]bool{}
	for _, a := range fwdC.Actions().Sorted() {
		allowed[a.Input[0].Str()+"|"+a.Input[1].Str()] = true
	}
	seen := map[string]int{}
	for _, line := range strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		seen[line]++
		if seen[line] > 1 {
			t.Fatalf("active invocation fired twice across crashes: %q", line)
		}
		if !allowed[line] {
			t.Errorf("delivery %q never happens in the control run", line)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no active invocation ever fired; harness produced no load")
	}
	t.Logf("crash harness: %d lives, recovered to instant %d, %d unique deliveries, info=%+v",
		iters, target, len(seen), info)
}
