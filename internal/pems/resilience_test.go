package pems_test

import (
	"testing"
	"time"

	"serena/internal/pems"
	"serena/internal/resilience"
	"serena/internal/value"
)

// resilienceScript declares a relation bound to a device that is never
// registered: every invocation fails with "unknown service", exercising the
// β degradation policies end to end through the DDL path.
const resilienceScript = `
PROTOTYPE getTemperature( ) : (temperature REAL );
EXTENDED RELATION probes ( dev SERVICE, temperature REAL VIRTUAL )
  USING BINDING PATTERNS ( getTemperature[dev] );
INSERT INTO probes VALUES (ghost);
`

// TestDDLOnErrorPolicies proves the REGISTER QUERY … ON ERROR clause flows
// through ExecuteDDL into the executor's per-query degradation policy.
func TestDDLOnErrorPolicies(t *testing.T) {
	p := pems.New()
	defer p.Close()
	if err := p.ExecuteDDL(resilienceScript); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(`
		REGISTER QUERY qnull ON ERROR NULL AS invoke[getTemperature](probes);
		REGISTER QUERY qskip ON ERROR SKIP AS invoke[getTemperature](probes);
	`); err != nil {
		t.Fatal(err)
	}
	exec := p.Executor()
	qn, ok := exec.Query("qnull")
	if !ok || qn.Degradation() != resilience.NullFill {
		t.Fatalf("qnull degradation = %v", qn.Degradation())
	}
	qs, ok := exec.Query("qskip")
	if !ok || qs.Degradation() != resilience.SkipTuple {
		t.Fatalf("qskip degradation = %v", qs.Degradation())
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	// NULL keeps the tuple with the virtual attribute unrealized; SKIP
	// drops it.
	if qn.LastResult().Len() != 1 {
		t.Fatalf("qnull result = %d tuples, want 1", qn.LastResult().Len())
	}
	tu := qn.LastResult().Tuples()[0]
	if !tu[len(tu)-1].IsNull() {
		t.Fatalf("qnull tuple not null-filled: %v", tu)
	}
	if qs.LastResult().Len() != 0 {
		t.Fatalf("qskip result = %d tuples, want 0", qs.LastResult().Len())
	}

	// ON ERROR FAIL turns the same failure into a tick error.
	if err := p.ExecuteDDL(`REGISTER QUERY qfail ON ERROR FAIL AS invoke[getTemperature](probes);`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err == nil {
		t.Fatal("ON ERROR FAIL did not abort the tick")
	}
	if err := p.UnregisterQuery("qfail"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil {
		t.Fatalf("ticks do not recover after unregistering the failing query: %v", err)
	}

	// A bad policy name is rejected at the parser, not silently ignored.
	if err := p.ExecuteDDL(`REGISTER QUERY bad ON ERROR EXPLODE AS invoke[getTemperature](probes);`); err == nil {
		t.Fatal("accepted unknown ON ERROR policy")
	}
}

// TestPEMSResilienceFacade exercises the facade knobs: invocation timeout,
// retry policy and circuit breakers configured at the PEMS level.
func TestPEMSResilienceFacade(t *testing.T) {
	p := pems.New()
	defer p.Close()
	p.SetInvocationTimeout(50 * time.Millisecond)
	p.SetRetryPolicy(resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	if p.BreakerStates() != nil {
		t.Fatal("breaker states reported before EnableBreakers")
	}
	p.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	if err := p.ExecuteDDL(resilienceScript); err != nil {
		t.Fatal(err)
	}
	// An unknown service fails validation before the breaker is consulted;
	// force a tracked failure through the registry directly.
	if _, err := p.Registry().Invoke("getTemperature", "ghost", value.Tuple{}, 0); err == nil {
		t.Fatal("ghost invocation succeeded")
	}
	if states := p.BreakerStates(); len(states) != 0 {
		// Unknown-service errors never reach a breaker — nothing tracked.
		t.Fatalf("unexpected breaker states: %v", states)
	}
}
