package pems_test

import (
	"strings"
	"testing"
	"time"

	"serena/internal/device"
)

func TestOneShotSQL(t *testing.T) {
	p, _, messengers, _ := newScenarioPEMS(t)
	res, err := p.OneShotSQL(`SELECT * FROM contacts SET text := "Bonjour!" USING sendMessage WHERE name != "Carla"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 || res.Actions.Len() != 2 {
		t.Fatalf("SQL Q1: %d rows, %s", res.Relation.Len(), res.Actions)
	}
	if len(messengers["email"].Outbox()) != 1 {
		t.Fatal("side effect missing")
	}
	// Aggregation through SQL.
	res2, err := p.OneShotSQL(`SELECT location, mean(temperature) AS avgtemp
		FROM sensors USING getTemperature GROUP BY location`)
	if err == nil {
		t.Fatalf("sensors is not declared in the DDL scenario (only the stream is); got %d rows", res2.Relation.Len())
	}
	// Errors are surfaced.
	if _, err := p.OneShotSQL(`SELECT ghost FROM contacts`); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestRegisterQuerySQLContinuous(t *testing.T) {
	p, sensors, messengers, _ := newScenarioPEMS(t)
	q, err := p.RegisterQuerySQL("alerts",
		`SELECT * FROM contacts NATURAL JOIN surveillance NATURAL JOIN temperatures[1]
		 SET text := "Alert!"
		 USING sendMessage
		 WHERE temperature > 28.0`, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Plan().String(), "invoke[sendMessage]") {
		t.Fatalf("plan = %s", q.Plan())
	}
	sensors["sensor06"].Heat(device.HeatEvent{From: 3, To: 6, Delta: 10})
	if err := p.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	emails := messengers["email"].Outbox()
	if len(emails) != 1 || emails[0].Address != "carla@elysee.fr" || emails[0].Text != "Alert!" {
		t.Fatalf("outbox = %v", emails)
	}
}

func TestExplain(t *testing.T) {
	p, _, _, _ := newScenarioPEMS(t)
	// SAL form.
	ex, err := p.Explain(`select[area = "office"](invoke[checkPhoto](cameras))`)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CostAfter >= ex.CostBefore || len(ex.Steps) == 0 {
		t.Fatalf("explanation = %+v", ex)
	}
	if !strings.Contains(ex.Optimized, `invoke[checkPhoto](select[area = "office"]`) {
		t.Fatalf("optimized = %s", ex.Optimized)
	}
	// SQL form.
	ex2, err := p.Explain(`SELECT name FROM contacts WHERE name != "Carla"`)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Original == "" || ex2.Optimized == "" {
		t.Fatalf("explanation = %+v", ex2)
	}
	// Errors surface.
	if _, err := p.Explain(`select[`); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := p.Explain(`SELECT ghost FROM contacts`); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestDerivedViewThroughSQL(t *testing.T) {
	p, sensors, messengers, _ := newScenarioPEMS(t)
	// Continuous view: per-location mean over a 3-instant window.
	if _, err := p.RegisterQuerySQL("means",
		`SELECT location, mean(temperature) AS avgtemp FROM temperatures[3] GROUP BY location`, false); err != nil {
		t.Fatal(err)
	}
	// Alerting query over the derived view.
	if _, err := p.RegisterQuerySQL("meanAlerts",
		`SELECT * FROM contacts NATURAL JOIN surveillance NATURAL JOIN means
		 SET text := "Mean alert!"
		 USING sendMessage
		 WHERE avgtemp > 27.0`, false); err != nil {
		t.Fatal(err)
	}
	sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 12, Delta: 14}) // office 21 → 35
	if err := p.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	emails := messengers["email"].Outbox()
	if len(emails) != 1 || emails[0].Address != "carla@elysee.fr" {
		t.Fatalf("outbox = %v (office manager alerted once)", emails)
	}
}

func TestRegisterQueryViaDDL(t *testing.T) {
	p, sensors, messengers, _ := newScenarioPEMS(t)
	// One script declares both a SQL view and an algebra alert query.
	err := p.ExecuteDDL(`
		REGISTER QUERY means AS
		  SELECT location, mean(temperature) AS avgtemp
		  FROM temperatures[3] GROUP BY location;
		REGISTER QUERY ddlAlerts AS
		  invoke[sendMessage](assign[text := "Hot!"](join(contacts,
		    select[temperature > 28.0](window[1](temperatures)))));`)
	if err != nil {
		t.Fatal(err)
	}
	sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 5, Delta: 10})
	if err := p.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	// The algebra query alerted all three contacts once.
	total := len(messengers["email"].Outbox()) + len(messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3", total)
	}
	// The SQL view exists as a derived relation.
	if _, ok := p.Executor().Relation("means"); !ok {
		t.Fatal("means view missing")
	}
	// UNREGISTER via DDL.
	if err := p.ExecuteDDL(`UNREGISTER QUERY means;`); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Executor().Relation("means"); ok {
		t.Fatal("means view should be gone")
	}
	// Catalog alone refuses query statements.
	if err := p.Catalog().ExecuteScript(`REGISTER QUERY q AS contacts;`, 0); err == nil {
		t.Fatal("catalog accepted a query statement")
	}
	// Bad query bodies surface with statement numbers.
	if err := p.ExecuteDDL(`REGISTER QUERY bad AS select[ghost = 1](contacts);`); err == nil {
		t.Fatal("invalid query body accepted")
	}
}

func TestRealTimeTicker(t *testing.T) {
	p, _, _, _ := newScenarioPEMS(t)
	if err := p.StartTicker(0, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := p.StartTicker(2*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.StartTicker(2*time.Millisecond, nil); err == nil {
		t.Fatal("double start accepted")
	}
	deadline := time.Now().Add(3 * time.Second)
	for p.Now() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if p.Now() < 3 {
		t.Fatalf("clock did not advance: %d", p.Now())
	}
	p.StopTicker()
	p.StopTicker() // idempotent
	at := p.Now()
	time.Sleep(20 * time.Millisecond)
	if p.Now() != at {
		t.Fatal("clock advanced after StopTicker")
	}
	// Close is safe with a running ticker too.
	if err := p.StartTicker(2*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	p.Close()
}
