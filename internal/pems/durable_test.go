package pems_test

import (
	"reflect"
	"testing"

	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/value"
	"serena/internal/wal"
)

// durableAlertQ is the Section 5.2 alert query used across recovery tests:
// an ACTIVE invoke whose input (address, text) is constant per contact, so
// the action set must keep it to exactly one physical send — across
// restarts included.
const durableAlertQ = `invoke[sendMessage](assign[text := "Temperature alert!"](
	join(contacts, join(surveillance,
		select[temperature > 28.0](window[1](temperatures))))))`

// durableScenario builds the scenario environment on a durable data dir,
// in the order a real embedder must use: enable durability, execute the
// (idempotent) prototype DDL, make the code registrations — devices and
// poll streams — and only then Recover. DDL-declared tables are executed
// only when the directory turned out to be fresh.
func durableScenario(t *testing.T, dir string) (*pems.PEMS, map[string]*device.Sensor, map[string]*device.Messenger, wal.Info) {
	t.Helper()
	p := pems.New()
	if err := p.EnableDurability(dir, wal.Options{Fsync: wal.SyncOff}); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	sensors, messengers, _ := localDevices(t, p)
	locAttr := []schema.Attribute{{Name: "location", Type: value.String}}
	if _, err := p.AddPollStream("temperatures", "getTemperature", "sensor", locAttr, locationOf(sensors)); err != nil {
		t.Fatal(err)
	}
	info, err := p.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.Fresh {
		if err := p.ExecuteDDL(scenarioTables); err != nil {
			t.Fatal(err)
		}
	}
	return p, sensors, messengers, info
}

// TestDurableCrashRecoveryActiveOnce is the core durability guarantee: a
// crash (no Close, no final checkpoint) loses nothing, and the active
// invocation fired before the crash is never fired again — neither during
// replay nor on later ticks where the same β would recompute.
func TestDurableCrashRecoveryActiveOnce(t *testing.T) {
	dir := t.TempDir()
	p1, sensors1, msgs1, info := durableScenario(t, dir)
	if !info.Fresh {
		t.Fatalf("first start on empty dir: info = %+v", info)
	}
	if _, err := p1.RegisterQuery("alerts", durableAlertQ, false); err != nil {
		t.Fatal(err)
	}
	sensors1["sensor06"].Heat(device.HeatEvent{From: 4, To: 30, Delta: 10}) // office 21 → 31 °C
	if err := p1.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	if got := msgs1["email"].Outbox(); len(got) != 1 {
		t.Fatalf("pre-crash outbox = %v", got)
	}
	// Crash: abandon p1 without Close. The WAL tail holds everything.

	p2, sensors2, msgs2, info2 := durableScenario(t, dir)
	defer p2.Close()
	if info2.Fresh {
		t.Fatal("second start should recover, not come up fresh")
	}
	if p2.Now() != 8 {
		t.Fatalf("recovered clock = %d, want 8", p2.Now())
	}
	q2, ok := p2.Executor().Query("alerts")
	if !ok {
		t.Fatal("continuous query not recovered")
	}
	if q2.Actions().Len() != 1 {
		t.Fatalf("recovered action set = %s", q2.Actions())
	}
	if got := msgs2["email"].Outbox(); len(got) != 0 {
		t.Fatalf("replay re-fired an active invocation: %v", got)
	}
	// The office is still hot after the restart. The recovered action set
	// dedups the identical (service, address, text) triple: no second send.
	sensors2["sensor06"].Heat(device.HeatEvent{From: 4, To: 30, Delta: 10})
	if err := p2.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	if got := msgs2["email"].Outbox(); len(got) != 0 {
		t.Fatalf("recovered action set failed to dedup: %v", got)
	}
	if q2.Actions().Len() != 1 {
		t.Fatalf("post-recovery action set = %s", q2.Actions())
	}
	res, err := p2.OneShot(`project[name](contacts)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("recovered contacts = %d rows, want 3", res.Relation.Len())
	}
}

// TestDurableCleanShutdownRestart proves the Close path: final checkpoint,
// zero log records to replay on the next start, window contents and the ON
// ERROR degradation policy preserved.
func TestDurableCleanShutdownRestart(t *testing.T) {
	dir := t.TempDir()
	p1, _, _, info := durableScenario(t, dir)
	if !info.Fresh {
		t.Fatalf("first start: info = %+v", info)
	}
	// Registered through DDL so the ON ERROR clause takes the full
	// round-trip: DDL → WAL → checkpoint → recovery.
	if err := p1.ExecuteDDL(`REGISTER QUERY watch ON ERROR SKIP AS select[temperature > -100.0](window[3](temperatures));`); err != nil {
		t.Fatal(err)
	}
	if err := p1.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	pre := p1.Executor().Snapshot()
	p1.Close() // graceful: drains, writes the final checkpoint

	p2, _, _, info2 := durableScenario(t, dir)
	defer p2.Close()
	if info2.Fresh || !info2.HadCheckpoint {
		t.Fatalf("restart after clean shutdown: info = %+v", info2)
	}
	if info2.Records != 0 || info2.Ticks != 0 {
		t.Fatalf("clean shutdown left a log tail: info = %+v", info2)
	}
	if p2.Now() != 5 {
		t.Fatalf("recovered clock = %d, want 5", p2.Now())
	}
	q2, ok := p2.Executor().Query("watch")
	if !ok {
		t.Fatal("query not in checkpoint")
	}
	if q2.Degradation() != resilience.SkipTuple {
		t.Fatalf("ON ERROR policy lost: %v", q2.Degradation())
	}
	// The recovered executor must be indistinguishable from the one that
	// shut down: same relation histories, delta-caches, stream memory,
	// statistics and action sets.
	post := p2.Executor().Snapshot()
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("recovered state differs from pre-shutdown state:\n pre  %+v\n post %+v", pre, post)
	}
	// And it keeps ticking: the next instant re-polls all four sensors.
	if err := p2.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if got := q2.LastResult().Len(); got != 4 {
		t.Fatalf("window after restart = %d rows, want 4", got)
	}
}

// TestDurableDDLTailReplay exercises DDL executed after the last
// checkpoint: new relations, their data, a late query with a policy, and
// an unregistration must all replay from the log tail.
func TestDurableDDLTailReplay(t *testing.T) {
	dir := t.TempDir()
	p1, _, _, _ := durableScenario(t, dir)
	if err := p1.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Everything below lives only in the WAL tail.
	if err := p1.ExecuteDDL(`
		EXTENDED RELATION notes ( body STRING );
		INSERT INTO notes VALUES ("hello");`); err != nil {
		t.Fatal(err)
	}
	if err := p1.ExecuteDDL(`REGISTER QUERY late ON ERROR NULL AS project[name](contacts);`); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.RegisterQuery("doomed", `project[name](contacts)`, false); err != nil {
		t.Fatal(err)
	}
	if err := p1.UnregisterQuery("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := p1.RunUntil(4); err != nil { // the INSERT lands at tick 3
		t.Fatal(err)
	}
	// Crash without Close.

	p2, _, _, info := durableScenario(t, dir)
	defer p2.Close()
	if info.Fresh || info.Records == 0 {
		t.Fatalf("expected a log tail to replay: info = %+v", info)
	}
	res, err := p2.OneShot(`project[body](notes)`)
	if err != nil {
		t.Fatalf("relation created after checkpoint not recovered: %v", err)
	}
	if res.Relation.Len() != 1 {
		t.Fatalf("notes = %d rows, want 1", res.Relation.Len())
	}
	q, ok := p2.Executor().Query("late")
	if !ok {
		t.Fatal("late query not replayed")
	}
	if q.Degradation() != resilience.NullFill {
		t.Fatalf("late query policy = %v", q.Degradation())
	}
	if _, ok := p2.Executor().Query("doomed"); ok {
		t.Fatal("unregistered query resurrected by replay")
	}
}

// TestDurableMaterializedIntoRoundTrip: a REGISTER QUERY … INTO … RETAIN
// declaration survives both recovery paths — WAL tail replay after a crash
// and checkpoint restore after a clean shutdown — with the materialized
// relation's contents re-derived, the retention policy intact, and the
// consumer guard still enforced afterwards.
func TestDurableMaterializedIntoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p1, sensors1, _, _ := durableScenario(t, dir)
	if err := p1.ExecuteDDL(`REGISTER QUERY rollup INTO hotzones RETAIN 8 INSTANTS AS
		select[temperature > 25.0](window[2](temperatures));`); err != nil {
		t.Fatal(err)
	}
	sensors1["sensor06"].Heat(device.HeatEvent{From: 2, To: 30, Delta: 10})
	if err := p1.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	x1, ok := p1.Executor().Relation("hotzones")
	if !ok {
		t.Fatal("INTO relation missing before crash")
	}
	want := len(x1.Current())
	if want == 0 {
		t.Fatal("materialized relation empty before crash")
	}
	// Crash without Close: the registration and every derived event live in
	// the WAL tail.

	p2, sensors2, _, info := durableScenario(t, dir)
	if info.Fresh {
		t.Fatal("expected recovery, got fresh start")
	}
	q2, ok := p2.Executor().Query("rollup")
	if !ok {
		t.Fatal("rollup query not replayed")
	}
	if q2.Into() != "hotzones" || q2.Retain() != 8 {
		t.Fatalf("INTO/RETAIN lost in tail replay: into=%q retain=%d", q2.Into(), q2.Retain())
	}
	x2, ok := p2.Executor().Relation("hotzones")
	if !ok {
		t.Fatal("INTO relation not recovered")
	}
	if got := len(x2.Current()); got != want {
		t.Fatalf("recovered hotzones = %d rows, want %d", got, want)
	}
	// Keep the heat on and tick across the checkpoint boundary, then shut
	// down cleanly so the second restart restores from the checkpoint alone.
	sensors2["sensor06"].Heat(device.HeatEvent{From: 2, To: 30, Delta: 10})
	if err := p2.RunUntil(9); err != nil {
		t.Fatal(err)
	}
	want2 := len(x2.Current())
	p2.Close()

	p3, _, _, info3 := durableScenario(t, dir)
	defer p3.Close()
	if info3.Fresh || !info3.HadCheckpoint || info3.Records != 0 {
		t.Fatalf("restart after clean shutdown: info = %+v", info3)
	}
	q3, ok := p3.Executor().Query("rollup")
	if !ok {
		t.Fatal("rollup query not in checkpoint")
	}
	if q3.Into() != "hotzones" || q3.Retain() != 8 {
		t.Fatalf("INTO/RETAIN lost in checkpoint: into=%q retain=%d", q3.Into(), q3.Retain())
	}
	x3, ok := p3.Executor().Relation("hotzones")
	if !ok {
		t.Fatal("INTO relation not in checkpoint")
	}
	if got := len(x3.Current()); got != want2 {
		t.Fatalf("checkpointed hotzones = %d rows, want %d", got, want2)
	}
	// The lifecycle guard survives recovery: a consumer over the recovered
	// materialized relation pins its producer.
	if _, err := p3.RegisterQuery("reader", `project[location](hotzones)`, false); err != nil {
		t.Fatal(err)
	}
	if err := p3.UnregisterQuery("rollup"); err == nil {
		t.Fatal("unregistering a recovered producer with a consumer must fail")
	}
	if err := p3.UnregisterQuery("reader"); err != nil {
		t.Fatal(err)
	}
	if err := p3.UnregisterQuery("rollup"); err != nil {
		t.Fatal(err)
	}
}

// TestDurableDiscoveryRecovery is the discovery × recovery interaction: a
// service whose lease expired while the system was down is restored from
// the log (its row was real at crash time) but must be withdrawn — not
// duplicated — on the first post-recovery sync, and breaker state must
// come back empty rather than resurrected from before the crash.
func TestDurableDiscoveryRecovery(t *testing.T) {
	dir := t.TempDir()
	liveSchema := func() *schema.Extended {
		return schema.MustExtended("livesensors", []schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
		}, nil)
	}

	p1 := pems.New()
	if err := p1.EnableDurability(dir, wal.Options{Fsync: wal.SyncOff}); err != nil {
		t.Fatal(err)
	}
	if err := p1.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	sensors1, _, _ := localDevices(t, p1)
	if _, err := p1.AddDiscoveryRelation(liveSchema(), "sensor", "getTemperature", nil); err != nil {
		t.Fatal(err)
	}
	bs1 := p1.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 1})
	if _, err := p1.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := p1.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	// Trip sensor22's breaker; breaker state is deliberately not durable.
	bs1.For("sensor22")
	bs1.OnResult("sensor22", false)
	if bs1.State("sensor22") != resilience.Open {
		t.Fatalf("breaker not open: %v", bs1.State("sensor22"))
	}
	_ = sensors1
	// Crash without Close.

	// Second life: sensor22's lease expired while the system was down — it
	// is not re-registered.
	p2 := pems.New()
	defer p2.Close()
	if err := p2.EnableDurability(dir, wal.Options{Fsync: wal.SyncOff}); err != nil {
		t.Fatal(err)
	}
	if err := p2.ExecuteDDL(table1Prototypes); err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct {
		ref, loc string
		base     float64
	}{{"sensor01", "corridor", 19}, {"sensor06", "office", 21}, {"sensor07", "office", 22}} {
		if err := p2.Registry().Register(device.NewSensor(s.ref, s.loc, s.base)); err != nil {
			t.Fatal(err)
		}
	}
	rel2, err := p2.AddDiscoveryRelation(liveSchema(), "sensor", "getTemperature", nil)
	if err != nil {
		t.Fatal(err)
	}
	p2.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 1})
	if _, err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	// The restored relation still carries all four rows: at crash time the
	// environment genuinely contained sensor22.
	if got := len(rel2.Current()); got != 4 {
		t.Fatalf("restored discovery relation = %d rows, want 4", got)
	}
	for ref, st := range p2.BreakerStates() {
		if st != resilience.Closed {
			t.Fatalf("breaker %s resurrected %v after restart", ref, st)
		}
	}
	// First post-recovery tick: the expired service is withdrawn, the
	// surviving three are NOT inserted a second time.
	if err := p2.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	rows := rel2.Current()
	if len(rows) != 3 {
		t.Fatalf("after sync rows = %d, want 3", len(rows))
	}
	seen := map[string]int{}
	for _, row := range rows {
		seen[row[0].ServiceRef()]++
	}
	for ref, n := range seen {
		if n != 1 {
			t.Fatalf("service %s has %d rows", ref, n)
		}
	}
	if seen["sensor22"] != 0 {
		t.Fatal("expired service still discovered")
	}
	// The node comes back later: re-registered, it reappears exactly once.
	if err := p2.Registry().Register(device.NewSensor("sensor22", "roof", 15)); err != nil {
		t.Fatal(err)
	}
	if err := p2.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if got := len(rel2.Current()); got != 4 {
		t.Fatalf("returned service rows = %d, want 4", got)
	}
}

// TestDurableFeedStreamNoReplayDuplicates guards the feed high-water-mark
// resync: after recovery the first live poll must fetch only items newer
// than the recovered instant, not re-insert the restored history.
func TestDurableFeedStreamNoReplayDuplicates(t *testing.T) {
	dir := t.TempDir()
	build := func() (*pems.PEMS, wal.Info) {
		p := pems.New()
		if err := p.EnableDurability(dir, wal.Options{Fsync: wal.SyncOff}); err != nil {
			t.Fatal(err)
		}
		if err := p.ExecuteDDL(table1Prototypes); err != nil {
			t.Fatal(err)
		}
		if err := p.Catalog().Registry().RegisterPrototype(device.GetItemsProto()); err != nil {
			t.Fatal(err)
		}
		if err := p.Registry().Register(device.NewFeed("lemonde", "Le Monde", 2, []string{"Obama"})); err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddFeedStream("news"); err != nil {
			t.Fatal(err)
		}
		info, err := p.Recover()
		if err != nil {
			t.Fatal(err)
		}
		return p, info
	}

	p1, info := build()
	if !info.Fresh {
		t.Fatalf("first start: info = %+v", info)
	}
	q1, err := p1.RegisterQuery("all", `window[3600](news)`, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	want := q1.LastResult().Len() // items 0..3 (period 2): 4 rows
	if want == 0 {
		t.Fatal("feed produced nothing")
	}
	// Crash without Close.

	p2, info2 := build()
	defer p2.Close()
	if info2.Fresh {
		t.Fatal("expected recovery")
	}
	q2, ok := p2.Executor().Query("all")
	if !ok {
		t.Fatal("query not recovered")
	}
	if err := p2.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	// One new item (seq 4 at instant 8); the restored four must appear once.
	if got := q2.LastResult().Len(); got != want+1 {
		t.Fatalf("window after recovery = %d rows, want %d", got, want+1)
	}
}
