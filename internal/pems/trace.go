package pems

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"serena/internal/query"
	"serena/internal/sal"
	"serena/internal/ssql"
	"serena/internal/trace"
)

// InvocationTrace is the outcome of a .trace run: the forced end-to-end
// trace of one query evaluation, with its rendered span tree (tick-less
// one-shot root, per-tuple β spans, wire round trips, server-side spans
// when the environment is distributed).
type InvocationTrace struct {
	TraceID uint64
	Tree    string
	Result  *query.Result
}

// TraceOneShot evaluates a one-shot query (SAL or Serena SQL,
// auto-detected) with tracing FORCED for this evaluation, regardless of the
// sampling period — the user asked for this query. Active invocations fire
// for real, exactly like OneShot.
func (p *PEMS) TraceOneShot(src string) (*InvocationTrace, error) {
	env := p.snapshotEnv()
	var n query.Node
	trimmed := strings.TrimSpace(src)
	if LooksLikeSQL(trimmed) {
		st, err := ssql.Compile(trimmed, env)
		if err != nil {
			return nil, err
		}
		n = st.Root
	} else {
		var err error
		n, err = sal.Parse(trimmed)
		if err != nil {
			return nil, err
		}
	}
	at := p.exec.Now()
	if at < 0 {
		at = 0
	}
	ctx := query.NewContext(p.Env(at), p.registry, at)
	ctx.Parallelism = p.invocationParallelism()
	ctx.BatchSize = p.invocationBatchSize()
	root := trace.Default.ForceRoot("query.eval")
	root.SetAttrInt("instant", int64(at))
	ctx.Span = root
	res, evalErr := query.EvaluateCtx(n, ctx)
	if evalErr != nil {
		root.SetAttr("error", evalErr.Error())
	}
	root.Finish()
	slog.LogAttrs(context.Background(), slog.LevelDebug, "pems: traced one-shot evaluation",
		append(root.LogAttrs(), slog.Int64("instant", int64(at)))...)
	out := &InvocationTrace{
		TraceID: root.TraceID,
		Tree:    trace.RenderTree(trace.Default.TraceSpans(root.TraceID)),
		Result:  res,
	}
	if evalErr != nil {
		// A failed evaluation still carries a partial trace (the error is
		// annotated on the span that raised it); hand both back.
		return out, fmt.Errorf("pems: traced evaluation: %w", evalErr)
	}
	return out, nil
}

// Lineage reports every retained β invocation that fed the named continuous
// query (or "oneshot" evaluations) and touched the given tuple-key fragment
// — the realized counterpart of the query's action set (Definition 8).
// Empty strings match everything on that axis.
func (p *PEMS) Lineage(queryName, key string) []trace.LineageEntry {
	return trace.Default.Lineage(queryName, key, trace.SpanInvoke)
}

// SetTraceSampling sets the process-wide head-sampling period: 0 disables
// tracing, 1 traces every tick/evaluation, n traces one in n.
func (p *PEMS) SetTraceSampling(every int64) {
	trace.Default.SetSampleEvery(every)
	slog.Debug("pems: trace sampling changed", "every", every)
}
