package pems

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"serena/internal/cq"
)

// peerReports adapts the discovery manager's membership view to the
// telemetry scraper's sys$peers feed.
func (p *PEMS) peerReports() []cq.PeerReport {
	if p.manager == nil {
		return nil
	}
	peers := p.manager.Peers()
	out := make([]cq.PeerReport, 0, len(peers))
	for _, pi := range peers {
		out = append(out, cq.PeerReport{
			Node:     pi.Node,
			State:    pi.State,
			Lease:    pi.Lease.Milliseconds(),
			Services: pi.Services,
		})
	}
	return out
}

// PeersReport is the JSON shape served by /debug/peers: cluster membership
// as the local discovery manager sees it, plus the per-node circuit-breaker
// states that drive failover routing demotion.
type PeersReport struct {
	Enabled bool            `json:"enabled"` // false: no discovery manager attached
	Peers   []PeerReportRow `json:"peers"`
}

// PeerReportRow is one peer in a PeersReport.
type PeerReportRow struct {
	Node       string `json:"node"`
	Addr       string `json:"addr"`
	State      string `json:"state"`            // "alive" or "down"
	LeaseMS    int64  `json:"lease_ms"`         // configured lease
	LeaseAgeMS int64  `json:"lease_age_ms"`     // alive: ms since last renewal; down: ms since departure
	Services   int    `json:"services"`         // services this peer provides
	Reason     string `json:"reason,omitempty"` // down peers: "bye" or "lease_expired"
	Breaker    string `json:"breaker"`          // per-node breaker state
}

// PeersReport snapshots cluster membership. Enabled is false (with no rows)
// when the PEMS runs without discovery.
func (p *PEMS) PeersReport() PeersReport {
	if p.manager == nil {
		return PeersReport{}
	}
	rep := PeersReport{Enabled: true}
	breakers := p.registry.NodeBreakerStates()
	now := time.Now()
	for _, pi := range p.manager.Peers() {
		row := PeerReportRow{
			Node:     pi.Node,
			Addr:     pi.Addr,
			State:    pi.State,
			LeaseMS:  pi.Lease.Milliseconds(),
			Services: pi.Services,
			Reason:   pi.Reason,
		}
		switch pi.State {
		case "alive":
			// Renewal time = deadline − lease; age = now − renewal.
			row.LeaseAgeMS = now.Sub(pi.Deadline.Add(-pi.Lease)).Milliseconds()
		default:
			row.LeaseAgeMS = now.Sub(pi.Since).Milliseconds()
		}
		if st, ok := breakers[pi.Node]; ok {
			row.Breaker = st.String()
		} else {
			row.Breaker = "closed"
		}
		rep.Peers = append(rep.Peers, row)
	}
	return rep
}

// PeersReportText renders the membership report for serena's .peers
// command, mirroring HealthReportText's style.
func (p *PEMS) PeersReportText() string {
	rep := p.PeersReport()
	if !rep.Enabled {
		return "discovery: disabled (no discovery bus attached)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "peers (%d):\n", len(rep.Peers))
	if len(rep.Peers) == 0 {
		b.WriteString("  (none discovered yet)\n")
	}
	for _, r := range rep.Peers {
		fmt.Fprintf(&b, "  %-16s %-6s addr=%s services=%d lease=%dms age=%dms breaker=%s",
			r.Node, r.State, r.Addr, r.Services, r.LeaseMS, r.LeaseAgeMS, r.Breaker)
		if r.Reason != "" {
			fmt.Fprintf(&b, "  (%s)", r.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// peersHandler serves /debug/peers (enabled:false rather than 404 when the
// PEMS has no discovery, so probes can tell "off" from "gone").
func (p *PEMS) peersHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.PeersReport())
	})
}
