package pems_test

import (
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/wire"
)

// TestCrossProcessTrace is the tentpole end-to-end check: a continuous
// query whose β invocations reach a wire-served node produces ONE coherent
// trace — tick → query → invocation operator → per-tuple β span → wire
// round trip → server-side execution — with an intact parent chain.
//
// The "remote" node lives in this process (its own registry behind a real
// TCP wire.Server), which keeps the test hermetic; trace propagation still
// crosses a genuine client/server round trip, and because both sides share
// trace.Default the full tree can be asserted in one ring.
func TestCrossProcessTrace(t *testing.T) {
	// Remote Local-ERM node hosting one sensor.
	remoteReg := service.NewRegistry()
	if err := remoteReg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := remoteReg.Register(device.NewSensor("rsensor01", "office", 21)); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("node-B", remoteReg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Core PEMS attaches the node's services as remote proxies.
	p := pems.New()
	defer p.Close()
	if err := p.ExecuteDDL(`PROTOTYPE getTemperature( ) : (temperature REAL );`); err != nil {
		t.Fatal(err)
	}
	client, err := wire.Dial(addr, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, infos, err := client.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if err := p.Registry().Register(wire.NewRemote(client, info)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.ExecuteDDL(`
EXTENDED RELATION sensors (
  sensor SERVICE, location STRING, temperature REAL VIRTUAL
) USING BINDING PATTERNS ( getTemperature[sensor] );
INSERT INTO sensors VALUES (rsensor01, "office");`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("hot", "invoke[getTemperature](sensors)", false); err != nil {
		t.Fatal(err)
	}

	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(1)
	trace.Default.Reset()
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()

	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}

	// Locate the tick's trace and index its spans.
	var root *trace.Span
	for _, s := range trace.Default.Snapshot() {
		if s.Name == "cq.tick" {
			root = s
		}
	}
	if root == nil {
		t.Fatal("no cq.tick root span recorded")
	}
	spans := trace.Default.TraceSpans(root.TraceID)
	byName := map[string]*trace.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, want := range []string{"cq.tick", "cq.query", "cq.invoke", trace.SpanInvoke, "wire.roundtrip", "wire.server"} {
		if byName[want] == nil {
			t.Fatalf("trace missing %q span; got %d spans:\n%s", want, len(spans), trace.RenderTree(spans))
		}
	}

	// The parent chain must be intact end to end.
	chain := []struct{ child, parent string }{
		{"cq.query", "cq.tick"},
		{"cq.invoke", "cq.query"},
		{trace.SpanInvoke, "cq.invoke"},
		{"wire.roundtrip", trace.SpanInvoke},
		{"wire.server", "wire.roundtrip"},
	}
	for _, link := range chain {
		c, par := byName[link.child], byName[link.parent]
		if c.ParentID != par.SpanID {
			t.Fatalf("%s should be a child of %s:\n%s", link.child, link.parent, trace.RenderTree(spans))
		}
		if c.TraceID != root.TraceID {
			t.Fatalf("%s escaped the trace", link.child)
		}
	}

	// Span payloads carry the invocation identity and outcome.
	if byName["cq.query"].Attr("query") != "hot" {
		t.Fatalf("cq.query attrs: %v", byName["cq.query"].Attrs)
	}
	inv := byName[trace.SpanInvoke]
	if inv.Attr("ref") != "rsensor01" || inv.Attr("mode") != "passive" || inv.Attr("rows") != "1" {
		t.Fatalf("β span attrs: %v", inv.Attrs)
	}
	ws := byName["wire.server"]
	if ws.Attr("node") != "node-B" || ws.Attr("proto") != "getTemperature" {
		t.Fatalf("server span attrs: %v", ws.Attrs)
	}

	// Lineage resolves the remote invocation back to its query and instant.
	entries := p.Lineage("hot", "rsensor01")
	if len(entries) != 1 || entries[0].Instant != "0" || entries[0].Query != "hot" {
		t.Fatalf("lineage = %+v", entries)
	}
}
