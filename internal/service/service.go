// Package service implements the service side of the Serena model (Gripay
// et al., EDBT 2010, Sections 2.1 and 2.3.1): services identified by service
// references, the prototypes they implement, and the invocation function
// invoke_ψ(s, t) → relation over Output_ψ (Definition 1).
//
// The registry is the in-process core of the paper's Environment Resource
// Manager: services register and withdraw dynamically and observers receive
// discovery events, which the PEMS layer turns into live service-discovery
// X-Relations.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/value"
)

// Instant is a discrete time instant τ ∈ T (Section 3.2: query evaluation
// happens at a given instant; services are deterministic at a given
// instant).
type Instant int64

// Sentinel errors returned by registry operations.
var (
	ErrUnknownService   = errors.New("service: unknown service reference")
	ErrUnknownPrototype = errors.New("service: unknown prototype")
	ErrNotImplemented   = errors.New("service: prototype not implemented by service")
	ErrDuplicate        = errors.New("service: duplicate registration")
)

// Service is an implementation of one or more prototypes, addressable by
// its service reference id(ω) (Section 2.3.1). Invoke must terminate (the
// paper's tractability assumption) and must be deterministic for a fixed
// (proto, input, at) triple within one instant.
type Service interface {
	// Ref returns the service reference id(ω) ∈ D.
	Ref() string
	// PrototypeNames returns the names of prototypes(ω), sorted.
	PrototypeNames() []string
	// Implements reports whether the named prototype is in prototypes(ω).
	Implements(proto string) bool
	// Invoke runs the named prototype with the given input tuple (over
	// Input_ψ) at the given instant and returns a relation over Output_ψ.
	Invoke(proto string, input value.Tuple, at Instant) ([]value.Tuple, error)
}

// InvokeFunc is the body of one prototype implementation.
type InvokeFunc func(input value.Tuple, at Instant) ([]value.Tuple, error)

// Func is a Service assembled from per-prototype functions. It is the
// standard way to wrap simulated devices and network stubs.
type Func struct {
	ref   string
	impls map[string]InvokeFunc
}

// NewFunc builds a function-backed service.
func NewFunc(ref string, impls map[string]InvokeFunc) *Func {
	cp := make(map[string]InvokeFunc, len(impls))
	for k, v := range impls {
		cp[k] = v
	}
	return &Func{ref: ref, impls: cp}
}

// Ref implements Service.
func (f *Func) Ref() string { return f.ref }

// PrototypeNames implements Service.
func (f *Func) PrototypeNames() []string {
	out := make([]string, 0, len(f.impls))
	for name := range f.impls {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Implements implements Service.
func (f *Func) Implements(proto string) bool { _, ok := f.impls[proto]; return ok }

// Invoke implements Service.
func (f *Func) Invoke(proto string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	fn, ok := f.impls[proto]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotImplemented, proto, f.ref)
	}
	return fn(input, at)
}

// EventKind tags discovery events.
type EventKind uint8

// Discovery event kinds.
const (
	Added EventKind = iota
	Removed
)

// Event describes a service arriving in or leaving the environment.
type Event struct {
	Kind       EventKind
	Ref        string
	Prototypes []string
}

// Registry tracks the prototypes and services of a relational pervasive
// environment. It is safe for concurrent use.
//
// Fault tolerance (see resilient.go): an optional per-invocation timeout,
// a retry policy applied only to passive prototypes, and per-service
// circuit breakers whose open state masks the service out of discovery.
type Registry struct {
	mu       sync.RWMutex
	protos   map[string]*schema.Prototype
	services map[string]*svcEntry
	watchers map[int]chan Event
	nextW    int

	// batchable counts registered services exposing a batch transport
	// (BatchCtxService — remote proxies). The query planner consults it:
	// with none registered, batching is pure overhead over the per-item
	// path, so its default stays off.
	batchable int

	invokeTimeout time.Duration
	retry         resilience.RetryPolicy
	breakers      *resilience.BreakerSet
	// nodeBreakers trips per NODE (never nil): fed only by transport-class
	// outcomes of provider-backed invocations, an Open node breaker demotes
	// all of that node's providers in routing order (see provider.go).
	nodeBreakers *resilience.BreakerSet
	// admission, when set, caps concurrent physical invocations through
	// this registry (see SetAdmissionLimit in resilient.go).
	admission *resilience.Limiter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		protos:   make(map[string]*schema.Prototype),
		services: make(map[string]*svcEntry),
		watchers: make(map[int]chan Event),
	}
	r.SetNodeBreakerPolicy(resilience.BreakerPolicy{})
	return r
}

// RegisterPrototype declares a prototype. Re-registering an identical
// declaration is a no-op; a conflicting one errors.
func (r *Registry) RegisterPrototype(p *schema.Prototype) error {
	if p == nil {
		return fmt.Errorf("service: nil prototype")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.protos[p.Name]; ok {
		if old.Active == p.Active && old.Input.Equal(p.Input) && old.Output.Equal(p.Output) {
			return nil
		}
		return fmt.Errorf("%w: prototype %s redeclared differently", ErrDuplicate, p.Name)
	}
	r.protos[p.Name] = p
	return nil
}

// Prototype looks a prototype up by name.
func (r *Registry) Prototype(name string) (*schema.Prototype, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.protos[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrototype, name)
	}
	return p, nil
}

// Prototypes returns all declared prototypes sorted by name.
func (r *Registry) Prototypes() []*schema.Prototype {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*schema.Prototype, 0, len(r.protos))
	for _, p := range r.protos {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Register adds a service to the environment and notifies watchers. Every
// prototype the service claims must have been declared.
func (r *Registry) Register(s Service) error {
	if s == nil || s.Ref() == "" {
		return fmt.Errorf("service: service needs a non-empty reference")
	}
	r.mu.Lock()
	if _, dup := r.services[s.Ref()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: service %s", ErrDuplicate, s.Ref())
	}
	for _, pn := range s.PrototypeNames() {
		if _, ok := r.protos[pn]; !ok {
			r.mu.Unlock()
			return fmt.Errorf("%w: %s (claimed by service %s)", ErrUnknownPrototype, pn, s.Ref())
		}
	}
	e := &svcEntry{svc: s}
	r.services[s.Ref()] = e
	r.recountBatchableLocked(e, true)
	if r.breakers != nil {
		// A (re)registered service starts with a clean slate: whatever
		// failure history its reference accumulated belongs to the departed
		// instance.
		r.breakers.Reset(s.Ref())
	}
	r.broadcastLocked(Event{Kind: Added, Ref: s.Ref(), Prototypes: s.PrototypeNames()})
	r.mu.Unlock()
	return nil
}

// Unregister removes a service (e.g. a failing sensor) and notifies
// watchers. Unknown references error.
func (r *Registry) Unregister(ref string) error {
	r.mu.Lock()
	e, ok := r.services[ref]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownService, ref)
	}
	delete(r.services, ref)
	if e.batchCounted {
		r.batchable--
	}
	r.broadcastLocked(Event{Kind: Removed, Ref: ref, Prototypes: e.svc.PrototypeNames()})
	r.mu.Unlock()
	return nil
}

// HasBatchTransport reports whether any registered service can carry many
// invocations in one frame (a BatchCtxService, e.g. a wire.Remote proxy).
func (r *Registry) HasBatchTransport() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.batchable > 0
}

// Lookup resolves a service reference.
func (r *Registry) Lookup(ref string) (Service, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.services[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, ref)
	}
	return e.svc, nil
}

// Refs returns all registered service references, sorted.
func (r *Registry) Refs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.services))
	for ref := range r.services {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// Implementing returns the sorted references of services implementing the
// named prototype — the source of the paper's service-discovery relations.
// Services whose circuit breaker is open are masked out: to the discovery
// X-Relations a tripped service looks temporarily withdrawn, and it
// reappears once the breaker cools down to half-open (Section 2.3's dynamic
// register/withdraw, driven by observed health).
func (r *Registry) Implementing(proto string) []string {
	r.mu.RLock()
	breakers := r.breakers
	var out []string
	for ref, e := range r.services {
		if e.svc.Implements(proto) {
			out = append(out, ref)
		}
	}
	r.mu.RUnlock()
	if breakers != nil {
		kept := out[:0]
		for _, ref := range out {
			if breakers.State(ref) != resilience.Open {
				kept = append(kept, ref)
			}
		}
		out = kept
	}
	sort.Strings(out)
	return out
}

// Invoke implements invoke_ψ (Definition 1): it resolves the reference,
// checks the prototype declaration, conforms the input tuple to Input_ψ,
// runs the service and conforms every output tuple to Output_ψ. It applies
// the registry's fault-tolerance settings (timeout, passive-only retry,
// breakers); InvokeCtx additionally propagates a caller deadline.
func (r *Registry) Invoke(proto, ref string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	return r.InvokeCtx(context.Background(), proto, ref, input, at)
}

// Watch subscribes to discovery events. The returned cancel function
// unsubscribes and closes the channel. Events are delivered asynchronously
// on a buffered channel; slow consumers drop the oldest pending event rather
// than blocking registration (discovery is best-effort, like UPnP
// announcements).
func (r *Registry) Watch() (<-chan Event, func()) {
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	ch := make(chan Event, 64)
	r.watchers[id] = ch
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if c, ok := r.watchers[id]; ok {
			delete(r.watchers, id)
			close(c)
		}
		r.mu.Unlock()
	}
	return ch, cancel
}

// broadcastLocked delivers an event to every watcher while r.mu is held.
// Sends never block (slow consumers drop their oldest pending event), so
// holding the lock is cheap — and it is what makes delivery safe against a
// concurrent Watch cancel, which closes the channel under the same lock.
// Snapshotting channels and sending unlocked would race a send against
// that close.
func (r *Registry) broadcastLocked(ev Event) {
	for _, ch := range r.watchers {
		for {
			select {
			case ch <- ev:
			default:
				// Drop the oldest pending event to make room.
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}
