package service

import (
	"fmt"
	"sync/atomic"
	"time"

	"serena/internal/resilience"
	"serena/internal/value"
)

// Faulty wraps a Service with a deterministic fault-injection plan:
// failures, extra latency and availability windows are decided by the
// discrete instant (and call identity), never by wall-clock randomness, so
// chaos tests replay identically. The wrapper counts physical calls, which
// lets tests prove that a short-circuited invocation (open breaker) never
// reached the service.
type Faulty struct {
	inner Service
	plan  *resilience.FaultPlan
	calls atomic.Int64
}

// NewFaulty wraps a service under a fault plan (nil plan injects nothing).
func NewFaulty(inner Service, plan *resilience.FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Ref implements Service.
func (f *Faulty) Ref() string { return f.inner.Ref() }

// PrototypeNames implements Service.
func (f *Faulty) PrototypeNames() []string { return f.inner.PrototypeNames() }

// Implements implements Service.
func (f *Faulty) Implements(proto string) bool { return f.inner.Implements(proto) }

// Calls returns how many invocations physically reached this wrapper.
func (f *Faulty) Calls() int64 { return f.calls.Load() }

// Invoke implements Service, applying the plan before delegating.
func (f *Faulty) Invoke(proto string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	f.calls.Add(1)
	if f.plan.ShouldFail(int64(at), f.inner.Ref()+"|"+proto+"|"+input.Key()) {
		return nil, fmt.Errorf("%w: %s on %s at %d", resilience.ErrInjected, proto, f.inner.Ref(), at)
	}
	if f.plan != nil && f.plan.Latency > 0 {
		time.Sleep(f.plan.Latency)
	}
	return f.inner.Invoke(proto, input, at)
}
