package service

import (
	"context"
	"fmt"
	"sync/atomic"

	"serena/internal/resilience"
	"serena/internal/value"
)

// Faulty wraps a Service with a deterministic fault-injection plan:
// failures, extra latency, stalls and availability windows are decided by
// the discrete instant (and call identity), never by wall-clock randomness,
// so chaos tests replay identically. The wrapper counts physical calls,
// which lets tests prove that a short-circuited invocation (open breaker,
// admission rejection) never reached the service.
type Faulty struct {
	inner Service
	plan  *resilience.FaultPlan
	calls atomic.Int64
}

// NewFaulty wraps a service under a fault plan (nil plan injects nothing).
func NewFaulty(inner Service, plan *resilience.FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Ref implements Service.
func (f *Faulty) Ref() string { return f.inner.Ref() }

// PrototypeNames implements Service.
func (f *Faulty) PrototypeNames() []string { return f.inner.PrototypeNames() }

// Implements implements Service.
func (f *Faulty) Implements(proto string) bool { return f.inner.Implements(proto) }

// Calls returns how many invocations physically reached this wrapper.
func (f *Faulty) Calls() int64 { return f.calls.Load() }

// Invoke implements Service, applying the plan before delegating.
func (f *Faulty) Invoke(proto string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	return f.InvokeCtx(context.Background(), proto, input, at)
}

// InvokeCtx implements CtxService: injected stalls and delays honor the
// caller's deadline, so a registry invocation timeout cuts a hung or slow
// fault short exactly as it would a real slow dependency.
func (f *Faulty) InvokeCtx(ctx context.Context, proto string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	f.calls.Add(1)
	key := f.inner.Ref() + "|" + proto + "|" + input.Key()
	if stall := f.plan.StallDuration(int64(at)); stall > 0 {
		// A stalled call hangs, then fails: the answer never comes.
		if err := resilience.SleepCtx(ctx, stall); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: stalled %s on %s at %d", resilience.ErrInjected, proto, f.inner.Ref(), at)
	}
	if f.plan.ShouldFail(int64(at), key) {
		return nil, fmt.Errorf("%w: %s on %s at %d", resilience.ErrInjected, proto, f.inner.Ref(), at)
	}
	if d := f.plan.Delay(int64(at), key); d > 0 {
		if err := resilience.SleepCtx(ctx, d); err != nil {
			return nil, err
		}
	}
	if cs, ok := f.inner.(CtxService); ok {
		return cs.InvokeCtx(ctx, proto, input, at)
	}
	return f.inner.Invoke(proto, input, at)
}

var _ CtxService = (*Faulty)(nil)
