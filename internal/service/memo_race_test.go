package service_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serena/internal/service"
	"serena/internal/value"
)

// TestMemoDoCoalescesConcurrentDuplicates is the regression test for the
// check-then-invoke race: N goroutines asking for the same (proto, ref,
// input) at the same instant must share ONE physical invocation — the
// paper's Section 3.2 determinism makes all answers at an instant
// interchangeable, so the duplicates were pure over-firing.
func TestMemoDoCoalescesConcurrentDuplicates(t *testing.T) {
	const goroutines = 32
	m := service.NewMemo(7)
	var invocations atomic.Int64
	want := []value.Tuple{{value.NewReal(21.5)}}

	var start, done sync.WaitGroup
	start.Add(1)
	errs := make([]error, goroutines)
	rows := make([][]value.Tuple, goroutines)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait() // maximize overlap
			r, _, err := m.Do("getTemperature", "sensor01", value.Tuple{}, func() ([]value.Tuple, error) {
				invocations.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return want, nil
			})
			rows[g], errs[g] = r, err
		}(g)
	}
	start.Done()
	done.Wait()

	if n := invocations.Load(); n != 1 {
		t.Fatalf("%d concurrent duplicates fired %d physical invocations, want 1", goroutines, n)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if len(rows[g]) != 1 || rows[g][0][0].Real() != 21.5 {
			t.Fatalf("goroutine %d got %v", g, rows[g])
		}
	}
	hits, misses := m.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if m.Coalesced() != goroutines-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced(), goroutines-1)
	}
	if hits != goroutines-1 { // Stats folds coalesced waiters into hits
		t.Fatalf("hits = %d, want %d", hits, goroutines-1)
	}
}

// TestMemoErrorPropagatesToWaitersAndIsNotCached: waiters coalesced onto a
// failing flight see its error, and the failure is NOT cached — the next
// Begin for the same key owns a fresh flight so the call can be retried.
func TestMemoErrorPropagatesToWaitersAndIsNotCached(t *testing.T) {
	m := service.NewMemo(1)
	boom := errors.New("transient")

	rows, fl, st := m.Begin("p", "svc", value.Tuple{})
	if st != service.BeginOwner || rows != nil {
		t.Fatalf("first Begin: status=%v rows=%v", st, rows)
	}

	var waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := m.Do("p", "svc", value.Tuple{}, func() ([]value.Tuple, error) {
			t.Error("waiter must not invoke while the owner's flight is open")
			return nil, nil
		})
		if !shared {
			t.Error("second Do should have coalesced onto the open flight")
		}
		waiterErr = err
	}()

	time.Sleep(2 * time.Millisecond) // let the waiter park on the flight
	fl.Complete(nil, boom)
	wg.Wait()
	if !errors.Is(waiterErr, boom) {
		t.Fatalf("waiter error = %v, want %v", waiterErr, boom)
	}

	// Errors are not cached: the key must be re-ownable.
	if _, _, st := m.Begin("p", "svc", value.Tuple{}); st != service.BeginOwner {
		t.Fatalf("after a failed flight Begin = %v, want BeginOwner (retry allowed)", st)
	}
}

// TestMemoBeginHitAfterComplete: a successful flight caches its rows, so a
// later Begin at the same instant is a plain hit with no flight.
func TestMemoBeginHitAfterComplete(t *testing.T) {
	m := service.NewMemo(3)
	want := []value.Tuple{{value.NewBool(true)}}
	_, fl, st := m.Begin("p", "svc", value.Tuple{value.NewString("x")})
	if st != service.BeginOwner {
		t.Fatalf("status = %v", st)
	}
	fl.Complete(want, nil)
	rows, fl2, st := m.Begin("p", "svc", value.Tuple{value.NewString("x")})
	if st != service.BeginHit || fl2 != nil {
		t.Fatalf("status = %v, flight = %v, want plain hit", st, fl2)
	}
	if len(rows) != 1 || !rows[0][0].Bool() {
		t.Fatalf("rows = %v", rows)
	}
}
