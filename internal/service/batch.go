package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/value"
)

// Batch-dispatch metrics: how many batch calls the registry handled, how
// many invocations they carried, and how many had to fall back to per-item
// dispatch because the service has no batch transport.
var (
	obsBatchCalls     = obs.Default.Counter("service.invoke.batch.calls")
	obsBatchItems     = obs.Default.Counter("service.invoke.batch.items")
	obsBatchFallbacks = obs.Default.Counter("service.invoke.batch.fallbacks")
)

// DefaultBatchParallelism bounds the per-item fan-out used when a batched
// invocation reaches a service without a batch transport.
const DefaultBatchParallelism = 8

// InvokeResult is one item's outcome within a batched invocation.
type InvokeResult struct {
	Rows []value.Tuple
	Err  error
}

// BatchCtxService is an optional Service extension for implementations
// whose transport can carry many invocations of one prototype in a single
// round trip (the wire v3 batch frame). Results must be positional: out[i]
// is input[i]'s outcome, and one item's failure must not fail its
// neighbours.
type BatchCtxService interface {
	Service
	InvokeBatchCtx(ctx context.Context, proto string, inputs []value.Tuple, at Instant) []InvokeResult
}

// InvokeBatchCtx performs invoke_ψ for many input tuples of one
// (prototype, service) pair in a single registry call. Services exposing a
// batch transport (remote proxies) get one round trip for the whole group;
// local services are fanned out on a bounded worker pool through the exact
// per-item InvokeCtx path, so retries, breakers and metrics behave as if
// the caller had looped. Errors are per item — callers apply their own
// degradation policy to each — except for resolution failures (unknown
// prototype/service), which uniformly fail every item.
func (r *Registry) InvokeBatchCtx(ctx context.Context, proto, ref string, inputs []value.Tuple, at Instant) []InvokeResult {
	out := make([]InvokeResult, len(inputs))
	if len(inputs) == 0 {
		return out
	}
	obsBatchCalls.Inc()
	obsBatchItems.Add(int64(len(inputs)))

	r.mu.RLock()
	p, okP := r.protos[proto]
	e, okS := r.services[ref]
	breakers := r.breakers
	nodeBreakers := r.nodeBreakers
	timeout := r.invokeTimeout
	admission := r.admission
	var cands []provider
	if okS {
		cands = e.candidates(nodeBreakers)
	}
	r.mu.RUnlock()
	failAll := func(err error) []InvokeResult {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	if !okP {
		return failAll(fmt.Errorf("%w: %s", ErrUnknownPrototype, proto))
	}
	if !okS {
		return failAll(fmt.Errorf("%w: %s", ErrUnknownService, ref))
	}
	impl := cands[:0:0]
	for _, c := range cands {
		if c.svc.Implements(proto) {
			impl = append(impl, c)
		}
	}
	if len(impl) == 0 {
		return failAll(fmt.Errorf("%w: %s on %s", ErrNotImplemented, proto, ref))
	}
	cands = impl
	_, hasBatch := cands[0].svc.(BatchCtxService)
	if !hasBatch {
		// No batch transport: bounded per-item fan-out through InvokeCtx so
		// every item keeps the full retry/breaker/metric treatment.
		obsBatchFallbacks.Inc()
		workers := DefaultBatchParallelism
		if workers > len(inputs) {
			workers = len(inputs)
		}
		if workers < 2 { // degenerate batch: no pool, no goroutines
			for i, in := range inputs {
				out[i].Rows, out[i].Err = r.InvokeCtx(ctx, proto, ref, in, at)
			}
			return out
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i].Rows, out[i].Err = r.InvokeCtx(ctx, proto, ref, inputs[i], at)
				}
			}()
		}
		for i := range inputs {
			next <- i
		}
		close(next)
		wg.Wait()
		return out
	}

	if breakers != nil && !breakers.Allow(ref) {
		obsInvokeShortCirc.Inc()
		return failAll(fmt.Errorf("service: invoke %s on %s: %w", proto, ref, resilience.ErrOpen))
	}
	// Conform every input before dispatch; malformed items fail locally and
	// are excluded from the frame.
	conf := make([]value.Tuple, 0, len(inputs))
	pos := make([]int, 0, len(inputs))
	for i, in := range inputs {
		c, err := p.Input.Conforms(in)
		if err != nil {
			out[i].Err = fmt.Errorf("service: invoke %s on %s: input: %w", proto, ref, err)
			continue
		}
		conf = append(conf, c)
		pos = append(pos, i)
	}
	if len(conf) == 0 {
		return out
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// One admission slot covers the whole frame — a batch is one physical
	// dispatch — and a rejection fails the frame fast without touching the
	// breaker.
	if admission != nil {
		if err := admission.Acquire(ctx); err != nil {
			if errors.Is(err, resilience.ErrOverloaded) {
				obsInvokeOverload.Inc()
			}
			return failAll(fmt.Errorf("service: invoke %s on %s: %w", proto, ref, err))
		}
		defer admission.Release()
	}
	im := e.metricsFor(proto, ref)
	if p.Active {
		// Defensive: the planner only batches passive β, but if an active
		// frame ever reaches here, forbid transparent transport re-sends.
		ctx = resilience.WithNoResend(ctx)
	}
	results := invokeBatchCandidates(ctx, cands, nodeBreakers, p.Active, proto, conf, at)
	for bi, res := range results {
		if bi >= len(pos) {
			break
		}
		i := pos[bi]
		obsInvokeCalls.Inc()
		im.calls.Inc()
		if breakers != nil {
			breakers.OnResult(ref, res.Err == nil)
		}
		if res.Err != nil {
			obsInvokeFailures.Inc()
			im.failures.Inc()
			out[i].Err = fmt.Errorf("service: invoke %s on %s: %w", proto, ref, res.Err)
			continue
		}
		rows := make([]value.Tuple, len(res.Rows))
		var convErr error
		for j, row := range res.Rows {
			c, err := p.Output.Conforms(row)
			if err != nil {
				convErr = fmt.Errorf("service: invoke %s on %s: output tuple %d: %w", proto, ref, j, err)
				break
			}
			rows[j] = c
		}
		if convErr != nil {
			out[i].Err = convErr
			continue
		}
		out[i].Rows = rows
	}
	// A short frame (buggy transport) fails the unanswered tail explicitly
	// rather than returning silent empty results.
	for bi := len(results); bi < len(pos); bi++ {
		out[pos[bi]].Err = fmt.Errorf("service: invoke %s on %s: batch transport returned %d of %d results", proto, ref, len(results), len(pos))
	}
	return out
}

// invokeBatchCandidates dispatches one conformed frame across a reference's
// providers: the routing owner first, then re-dispatches ONLY the
// transport-failed items to each surviving replica in turn (batch frame if
// the replica has a batch transport, per-item calls otherwise). The same
// failover rule as invokeCandidates applies: application errors stick with
// the answering node, and active items never move after an ErrOutcomeUnknown.
// Results are positional over conf.
func invokeBatchCandidates(ctx context.Context, cands []provider, nb *resilience.BreakerSet, active bool, proto string, conf []value.Tuple, at Instant) []InvokeResult {
	results := make([]InvokeResult, len(conf))
	pending := make([]int, len(conf)) // indices into conf still unanswered
	for i := range pending {
		pending[i] = i
	}
	shortFrame := func(got, want int) error {
		return fmt.Errorf("batch transport returned %d of %d results", got, want)
	}
	for ci, c := range cands {
		if len(pending) == 0 {
			break
		}
		if ci > 0 {
			obsInvokeFailovers.Add(int64(len(pending)))
		}
		sub := make([]value.Tuple, len(pending))
		for k, i := range pending {
			sub[k] = conf[i]
		}
		var subRes []InvokeResult
		if cbs, ok := c.svc.(BatchCtxService); ok {
			subRes = cbs.InvokeBatchCtx(ctx, proto, sub, at)
		} else {
			subRes = make([]InvokeResult, len(sub))
			for k, in := range sub {
				rows, err := callService(ctx, c.svc, proto, in, at, 0)
				subRes[k] = InvokeResult{Rows: rows, Err: err}
			}
		}
		// Feed the node breaker once per frame: the node is down only if
		// EVERY item failed at the transport layer; any application-level
		// answer proves the node alive.
		var frameErr error
		allTransport := len(subRes) > 0
		for _, res := range subRes {
			if res.Err == nil || !resilience.IsTransport(res.Err) {
				allTransport = false
				break
			}
			frameErr = res.Err
		}
		if !allTransport {
			frameErr = nil
		}
		onProviderResult(nb, c, frameErr)
		// Split outcomes: transport-failed items that may legally move try
		// the next candidate; everything else is final.
		var retry []int
		for k, i := range pending {
			var res InvokeResult
			if k < len(subRes) {
				res = subRes[k]
			} else {
				res = InvokeResult{Err: shortFrame(len(subRes), len(sub))}
			}
			moveable := res.Err != nil && resilience.IsTransport(res.Err) &&
				ctx.Err() == nil && ci+1 < len(cands) &&
				(!active || errors.Is(res.Err, resilience.ErrUnreachable))
			if moveable {
				retry = append(retry, i)
				continue
			}
			results[i] = res
		}
		pending = retry
	}
	if len(pending) > 0 {
		// Candidates exhausted mid-split (should not happen: items only stay
		// pending when another candidate remains) — fail them explicitly.
		obsInvokeExhausted.Add(int64(len(pending)))
		for _, i := range pending {
			results[i] = InvokeResult{Err: fmt.Errorf("%w after %d providers", resilience.ErrUnreachable, len(cands))}
		}
	}
	return results
}
