package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"serena/internal/schema"
	"serena/internal/value"
)

func tempProto() *schema.Prototype {
	return schema.MustPrototype("getTemperature", nil,
		schema.MustRel(schema.Attribute{Name: "temperature", Type: value.Real}), false)
}

func sendProto() *schema.Prototype {
	return schema.MustPrototype("sendMessage",
		schema.MustRel(schema.Attribute{Name: "address", Type: value.String},
			schema.Attribute{Name: "text", Type: value.String}),
		schema.MustRel(schema.Attribute{Name: "sent", Type: value.Bool}), true)
}

func tempService(ref string, temp float64) *Func {
	return NewFunc(ref, map[string]InvokeFunc{
		"getTemperature": func(_ value.Tuple, at Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewReal(temp + float64(at))}}, nil
		},
	})
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if err := r.RegisterPrototype(tempProto()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterPrototype(sendProto()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFuncService(t *testing.T) {
	s := tempService("sensor01", 20)
	if s.Ref() != "sensor01" || !s.Implements("getTemperature") || s.Implements("other") {
		t.Fatal("Func basics broken")
	}
	if got := s.PrototypeNames(); len(got) != 1 || got[0] != "getTemperature" {
		t.Fatalf("PrototypeNames = %v", got)
	}
	rows, err := s.Invoke("getTemperature", nil, 5)
	if err != nil || len(rows) != 1 || rows[0][0].Real() != 25 {
		t.Fatalf("Invoke = %v, %v", rows, err)
	}
	if _, err := s.Invoke("nope", nil, 0); !errors.Is(err, ErrNotImplemented) {
		t.Fatalf("want ErrNotImplemented, got %v", err)
	}
}

func TestRegistryPrototypes(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.Prototype("getTemperature"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Prototype("ghost"); !errors.Is(err, ErrUnknownPrototype) {
		t.Fatalf("want ErrUnknownPrototype, got %v", err)
	}
	// Identical re-registration is a no-op.
	if err := r.RegisterPrototype(tempProto()); err != nil {
		t.Fatalf("idempotent registration failed: %v", err)
	}
	// Conflicting redeclaration errors.
	conflict := schema.MustPrototype("getTemperature", nil,
		schema.MustRel(schema.Attribute{Name: "temperature", Type: value.Int}), false)
	if err := r.RegisterPrototype(conflict); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	names := r.Prototypes()
	if len(names) != 2 || names[0].Name != "getTemperature" || names[1].Name != "sendMessage" {
		t.Fatalf("Prototypes = %v", names)
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.Register(tempService("sensor01", 20)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(tempService("sensor01", 30)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate ref: want ErrDuplicate, got %v", err)
	}
	if _, err := r.Lookup("sensor01"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
	// Claiming an undeclared prototype is rejected.
	bad := NewFunc("weird", map[string]InvokeFunc{"mystery": func(value.Tuple, Instant) ([]value.Tuple, error) { return nil, nil }})
	if err := r.Register(bad); !errors.Is(err, ErrUnknownPrototype) {
		t.Fatalf("want ErrUnknownPrototype, got %v", err)
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("nil service accepted")
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := newTestRegistry(t)
	_ = r.Register(tempService("sensor01", 20))
	if err := r.Unregister("sensor01"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("sensor01"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
	if len(r.Refs()) != 0 {
		t.Fatal("service still listed after unregister")
	}
}

func TestRegistryImplementing(t *testing.T) {
	r := newTestRegistry(t)
	_ = r.Register(tempService("sensor22", 5))
	_ = r.Register(tempService("sensor01", 20))
	_ = r.Register(NewFunc("email", map[string]InvokeFunc{
		"sendMessage": func(in value.Tuple, _ Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewBool(true)}}, nil
		},
	}))
	got := r.Implementing("getTemperature")
	if len(got) != 2 || got[0] != "sensor01" || got[1] != "sensor22" {
		t.Fatalf("Implementing = %v (want sorted sensors)", got)
	}
	if got := r.Implementing("sendMessage"); len(got) != 1 || got[0] != "email" {
		t.Fatalf("Implementing(sendMessage) = %v", got)
	}
	if got := r.Implementing("ghost"); len(got) != 0 {
		t.Fatalf("Implementing(ghost) = %v", got)
	}
}

func TestRegistryInvoke(t *testing.T) {
	r := newTestRegistry(t)
	_ = r.Register(tempService("sensor01", 20))
	rows, err := r.Invoke("getTemperature", "sensor01", nil, 2)
	if err != nil || len(rows) != 1 || rows[0][0].Real() != 22 {
		t.Fatalf("Invoke = %v, %v", rows, err)
	}
	if _, err := r.Invoke("ghostProto", "sensor01", nil, 0); !errors.Is(err, ErrUnknownPrototype) {
		t.Fatal("unknown prototype not rejected")
	}
	if _, err := r.Invoke("getTemperature", "ghost", nil, 0); !errors.Is(err, ErrUnknownService) {
		t.Fatal("unknown service not rejected")
	}
	if _, err := r.Invoke("sendMessage", "sensor01", value.Tuple{value.NewString("a"), value.NewString("b")}, 0); !errors.Is(err, ErrNotImplemented) {
		t.Fatal("not-implemented not rejected")
	}
}

func TestRegistryInvokeConformance(t *testing.T) {
	r := newTestRegistry(t)
	// Service returning a wrong-typed output tuple must be caught.
	_ = r.Register(NewFunc("liar", map[string]InvokeFunc{
		"getTemperature": func(value.Tuple, Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewString("hot")}}, nil
		},
	}))
	if _, err := r.Invoke("getTemperature", "liar", nil, 0); err == nil {
		t.Fatal("ill-typed service output accepted")
	}
	// Input arity is validated against Input_ψ.
	_ = r.Register(NewFunc("email", map[string]InvokeFunc{
		"sendMessage": func(in value.Tuple, _ Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewBool(true)}}, nil
		},
	}))
	if _, err := r.Invoke("sendMessage", "email", value.Tuple{value.NewString("only-address")}, 0); err == nil {
		t.Fatal("ill-typed input accepted")
	}
	// Int input coerces to REAL parameters etc. via Conforms; sendMessage
	// takes two strings, valid call:
	rows, err := r.Invoke("sendMessage", "email",
		value.Tuple{value.NewString("a@b"), value.NewString("hi")}, 0)
	if err != nil || len(rows) != 1 || !rows[0][0].Bool() {
		t.Fatalf("valid invoke failed: %v %v", rows, err)
	}
}

func TestRegistryInvokeErrorWrapping(t *testing.T) {
	r := newTestRegistry(t)
	boom := errors.New("sensor on fire")
	_ = r.Register(NewFunc("bad", map[string]InvokeFunc{
		"getTemperature": func(value.Tuple, Instant) ([]value.Tuple, error) {
			return nil, boom
		},
	}))
	_, err := r.Invoke("getTemperature", "bad", nil, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("service error not wrapped: %v", err)
	}
}

func TestWatchDiscoveryEvents(t *testing.T) {
	r := newTestRegistry(t)
	ch, cancel := r.Watch()
	defer cancel()
	_ = r.Register(tempService("sensor01", 20))
	ev := <-ch
	if ev.Kind != Added || ev.Ref != "sensor01" || len(ev.Prototypes) != 1 {
		t.Fatalf("added event = %+v", ev)
	}
	_ = r.Unregister("sensor01")
	ev = <-ch
	if ev.Kind != Removed || ev.Ref != "sensor01" {
		t.Fatalf("removed event = %+v", ev)
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel should be closed after cancel")
	}
	// Double-cancel must not panic.
	cancel()
}

func TestWatchSlowConsumerDoesNotBlock(t *testing.T) {
	r := newTestRegistry(t)
	ch, cancel := r.Watch()
	defer cancel()
	// Overflow the 64-slot buffer; registration must not block.
	for i := 0; i < 200; i++ {
		if err := r.Register(tempService(fmt.Sprintf("s%03d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Refs()) != 200 {
		t.Fatal("registrations lost")
	}
	// We should still be able to drain some (the most recent) events.
	drained := 0
	for {
		select {
		case <-ch:
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 || drained > 64 {
		t.Fatalf("drained %d events, want 1..64", drained)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := newTestRegistry(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ref := fmt.Sprintf("s-%d-%d", g, i)
				if err := r.Register(tempService(ref, 0)); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Invoke("getTemperature", ref, nil, Instant(i)); err != nil {
					t.Error(err)
					return
				}
				if err := r.Unregister(ref); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(r.Refs()) != 0 {
		t.Fatal("registry should be empty")
	}
}

func TestMemo(t *testing.T) {
	m := NewMemo(7)
	if m.Instant() != 7 {
		t.Fatal("Instant broken")
	}
	in := value.Tuple{value.NewString("office")}
	if _, ok := m.Get("p", "s", in); ok {
		t.Fatal("empty memo hit")
	}
	rows := []value.Tuple{{value.NewReal(20)}}
	m.Put("p", "s", in, rows)
	got, ok := m.Get("p", "s", in)
	if !ok || len(got) != 1 || got[0][0].Real() != 20 {
		t.Fatal("memo miss after put")
	}
	// Distinct key components must not collide.
	if _, ok := m.Get("p", "s2", in); ok {
		t.Fatal("cross-ref hit")
	}
	if _, ok := m.Get("p2", "s", in); ok {
		t.Fatal("cross-proto hit")
	}
	if _, ok := m.Get("p", "s", value.Tuple{value.NewString("roof")}); ok {
		t.Fatal("cross-input hit")
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("stats = %d/%d, want 1/4", hits, misses)
	}
}
