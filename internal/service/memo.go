package service

import (
	"sync"

	"serena/internal/value"
)

// Memo caches passive invocation results within a single time instant. The
// paper assumes services are deterministic at a given instant (Section 3.2),
// which makes invoke_ψ(s, t) a pure function of (ψ, s, t, τ); the memo
// exploits that to avoid re-invoking a passive prototype with identical
// arguments during one query evaluation or one continuous-query tick.
//
// Concurrent lookups of the same key are coalesced: the first caller owns
// an in-flight entry and performs the physical call, later callers wait for
// its result instead of invoking again. Without coalescing a check-then-
// invoke-then-put memo lets two parallel workers both miss and both invoke
// — a duplicate passive call within one instant, which Section 3.2's
// determinism says is pure waste (and, for metered services, a real cost).
//
// Active prototypes must NEVER be memoized: each occurrence in a query is a
// distinct action with a physical side effect.
type Memo struct {
	mu sync.Mutex
	at Instant
	// m holds one entry per key, in-flight or completed: a completed entry
	// IS the cached result. One map keeps the hot miss path at a single
	// lookup plus a single insert (Complete publishes in place, touching no
	// map), which matters because β fan-out pays this cost per tuple.
	m map[memoKey]*Flight
	// Hits, misses and coalesced-waits are simple counters for the
	// ablation benchmarks and the coalesce-hit metrics.
	hits, misses, coalesced int64
}

type memoKey struct {
	proto string
	ref   string
	input string // tuple identity key
}

// NewMemo returns a memo bound to the given instant.
func NewMemo(at Instant) *Memo {
	return &Memo{at: at, m: make(map[memoKey]*Flight)}
}

// Instant returns the instant this memo is valid for.
func (m *Memo) Instant() Instant { return m.at }

// Get returns a cached result for (proto, ref, input). An in-flight entry
// is a miss: Get does not coalesce (use Begin or Do for that).
func (m *Memo) Get(proto, ref string, input value.Tuple) ([]value.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.m[memoKey{proto, ref, input.Key()}]; ok && f.completed {
		m.hits++
		return f.rows, true
	}
	m.misses++
	return nil, false
}

// Put stores an invocation result.
func (m *Memo) Put(proto, ref string, input value.Tuple, rows []value.Tuple) {
	key := memoKey{proto, ref, input.Key()}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[key] = &Flight{completed: true, memo: m, key: key, rows: rows}
}

// Stats returns (hits, misses) since creation. A coalesced wait counts as a
// hit — the caller got a result without a physical call.
func (m *Memo) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits + m.coalesced, m.misses
}

// Coalesced returns how many lookups joined another caller's in-flight
// invocation instead of performing their own.
func (m *Memo) Coalesced() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coalesced
}

// Flight is one memo entry for a (proto, ref, input) key, in-flight until
// its owner (the caller Begin told to invoke) Completes it — exactly once;
// everyone else Waits. Flight state is guarded by the memo's mutex; the
// wake-up channel is only allocated when a waiter actually parks, so the
// common uncontended miss pays no channel.
type Flight struct {
	done      chan struct{} // created lazily by the first Wait
	completed bool
	memo      *Memo
	key       memoKey
	rows      []value.Tuple
	err       error
}

// BeginStatus reports a Begin caller's role.
type BeginStatus uint8

// Begin outcomes.
const (
	// BeginHit: the key was already memoized; rows are valid.
	BeginHit BeginStatus = iota
	// BeginOwner: the caller must perform the invocation and Complete the
	// returned flight.
	BeginOwner
	// BeginShared: another caller is invoking; Wait on the returned flight.
	BeginShared
)

// Begin is the coalescing entry point: it returns the cached rows
// (BeginHit), registers the caller as the single invoker of a new in-flight
// entry (BeginOwner), or hands back another caller's in-flight entry to
// wait on (BeginShared). Owners MUST call Flight.Complete — even on error —
// or waiters block forever.
func (m *Memo) Begin(proto, ref string, input value.Tuple) ([]value.Tuple, *Flight, BeginStatus) {
	key := memoKey{proto, ref, input.Key()}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.m[key]; ok {
		if f.completed {
			m.hits++
			return f.rows, nil, BeginHit
		}
		m.coalesced++
		return nil, f, BeginShared
	}
	m.misses++
	f := &Flight{memo: m, key: key}
	m.m[key] = f
	return nil, f, BeginOwner
}

// Complete publishes the owner's result: a successful invocation is
// memoized, a failed one only wakes the waiters (errors are never cached —
// the key is invokable again, e.g. by the next instant's retry).
func (f *Flight) Complete(rows []value.Tuple, err error) {
	m := f.memo
	m.mu.Lock()
	f.rows, f.err = rows, err
	f.completed = true
	if err != nil {
		delete(m.m, f.key)
	}
	done := f.done
	m.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// Wait blocks until the flight's owner Completes and returns its result.
func (f *Flight) Wait() ([]value.Tuple, error) {
	m := f.memo
	m.mu.Lock()
	if f.completed {
		defer m.mu.Unlock()
		return f.rows, f.err
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	done := f.done
	m.mu.Unlock()
	<-done
	return f.rows, f.err
}

// Do runs fn for (proto, ref, input) at most once concurrently: a memo hit
// or a join of an in-flight call returns the shared result (shared=true)
// without running fn. Errors are propagated to every waiter and never
// cached.
func (m *Memo) Do(proto, ref string, input value.Tuple, fn func() ([]value.Tuple, error)) (rows []value.Tuple, shared bool, err error) {
	rows, f, st := m.Begin(proto, ref, input)
	switch st {
	case BeginHit:
		return rows, true, nil
	case BeginShared:
		rows, err = f.Wait()
		return rows, true, err
	}
	rows, err = fn()
	f.Complete(rows, err)
	return rows, false, err
}
