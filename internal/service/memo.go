package service

import (
	"sync"

	"serena/internal/value"
)

// Memo caches passive invocation results within a single time instant. The
// paper assumes services are deterministic at a given instant (Section 3.2),
// which makes invoke_ψ(s, t) a pure function of (ψ, s, t, τ); the memo
// exploits that to avoid re-invoking a passive prototype with identical
// arguments during one query evaluation or one continuous-query tick.
//
// Active prototypes must NEVER be memoized: each occurrence in a query is a
// distinct action with a physical side effect.
type Memo struct {
	mu sync.Mutex
	at Instant
	m  map[memoKey][]value.Tuple
	// Hits and Misses are simple counters for the ablation benchmarks.
	hits, misses int64
}

type memoKey struct {
	proto string
	ref   string
	input string // tuple identity key
}

// NewMemo returns a memo bound to the given instant.
func NewMemo(at Instant) *Memo {
	return &Memo{at: at, m: make(map[memoKey][]value.Tuple)}
}

// Instant returns the instant this memo is valid for.
func (m *Memo) Instant() Instant { return m.at }

// Get returns a cached result for (proto, ref, input).
func (m *Memo) Get(proto, ref string, input value.Tuple) ([]value.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows, ok := m.m[memoKey{proto, ref, input.Key()}]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return rows, ok
}

// Put stores an invocation result.
func (m *Memo) Put(proto, ref string, input value.Tuple, rows []value.Tuple) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[memoKey{proto, ref, input.Key()}] = rows
}

// Stats returns (hits, misses) since creation.
func (m *Memo) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}
