package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/value"
)

// slowService answers probe after d (honoring ctx through Faulty's delay
// injection would also work; here we block directly).
func slowService(ref string, d time.Duration) *service.Func {
	return service.NewFunc(ref, map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			time.Sleep(d)
			return []value.Tuple{{value.NewReal(21)}}, nil
		},
	})
}

// TestAdmissionRejectsFastUnderLoad: with one slot, no queue, a second
// concurrent invocation is rejected with ErrOverloaded in microseconds —
// and never reaches the service.
func TestAdmissionRejectsFastUnderLoad(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	// A deterministically slow dependency via the latency-fault plan.
	inner := slowService("s", 0)
	faulty := service.NewFaulty(inner, &resilience.FaultPlan{Latency: 200 * time.Millisecond})
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	reg.SetAdmissionLimit(1, 0, 0)

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		if _, err := reg.Invoke("probe", "s", nil, 0); err != nil {
			t.Errorf("slot-holding invocation failed: %v", err)
		}
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // let the holder physically start
	begin := time.Now()
	_, err := reg.Invoke("probe", "s", nil, 0)
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if time.Since(begin) > 100*time.Millisecond {
		t.Fatalf("rejection not fast: %v", time.Since(begin))
	}
	if got := faulty.Calls(); got != 1 {
		t.Fatalf("rejected call reached the service: %d physical calls", got)
	}
	wg.Wait()
	// Slot released: the next call is admitted.
	if _, err := reg.Invoke("probe", "s", nil, 0); err != nil {
		t.Fatalf("post-release invocation: %v", err)
	}
	_, _, rejected, enabled := reg.AdmissionStats()
	if !enabled || rejected != 1 {
		t.Fatalf("admission stats: enabled=%v rejected=%d", enabled, rejected)
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees: a waiter inside the queue bound
// gets the slot instead of an error.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	faulty := service.NewFaulty(slowService("s", 0), &resilience.FaultPlan{Latency: 50 * time.Millisecond})
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	reg.SetAdmissionLimit(1, 4, time.Second)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reg.Invoke("probe", "s", nil, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued invocation %d failed: %v", i, err)
		}
	}
	if got := faulty.Calls(); got != 3 {
		t.Fatalf("physical calls = %d, want 3", got)
	}
}

// TestAdmissionRejectionBypassesBreaker: overload rejections must not trip
// the breaker — the callee is healthy, the caller is just busy.
func TestAdmissionRejectionBypassesBreaker(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	faulty := service.NewFaulty(slowService("s", 0), &resilience.FaultPlan{Latency: 150 * time.Millisecond})
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	reg.SetAdmissionLimit(1, 0, 0)
	set := reg.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute})

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		_, _ = reg.Invoke("probe", "s", nil, 0)
		close(done)
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 5; i++ {
		_, err := reg.Invoke("probe", "s", nil, 0)
		if !errors.Is(err, resilience.ErrOverloaded) {
			t.Fatalf("call %d: want ErrOverloaded, got %v", i, err)
		}
	}
	<-done
	// Five rejections, threshold two — yet the breaker stayed closed.
	if _, err := reg.Invoke("probe", "s", nil, 0); err != nil {
		t.Fatalf("breaker tripped by overload rejections: %v", err)
	}
	if st := set.State("s"); st != resilience.Closed {
		t.Fatalf("breaker state = %v, want Closed", st)
	}
}

// TestAdmissionHonorsContext: a canceled caller gets its context error,
// not an overload error.
func TestAdmissionHonorsContext(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewFaulty(slowService("s", 0),
		&resilience.FaultPlan{Latency: 200 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	reg.SetAdmissionLimit(1, 4, time.Minute)
	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = reg.Invoke("probe", "s", nil, 0)
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := reg.InvokeCtx(ctx, "probe", "s", nil, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
