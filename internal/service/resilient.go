package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/trace"
	"serena/internal/value"
)

// Invocation metrics, always on. Aggregates are cached package-level;
// per-(prototype, service) bundles hang off the services-map entry so the
// β hot path costs no extra lookup — just a few atomic ops, no allocation.
var (
	obsInvokeLatency   = obs.Default.Histogram("service.invoke.latency")
	obsInvokeCalls     = obs.Default.Counter("service.invoke.calls")
	obsInvokeRetries   = obs.Default.Counter("service.invoke.retries")
	obsInvokeFailures  = obs.Default.Counter("service.invoke.failures")
	obsInvokeShortCirc = obs.Default.Counter("service.invoke.short_circuits")
	obsInvokeOverload  = obs.Default.Counter("service.invoke.overload_rejections")
)

// invokeMetrics is the cached per-(prototype, service) metric bundle,
// registered under keys like "service.invoke.calls{getTemperature|sensor1}".
type invokeMetrics struct {
	calls    *obs.Counter
	latency  *obs.Histogram
	retries  *obs.Counter
	failures *obs.Counter
}

// svcEntry is what the registry's services map actually holds: the service
// plus its per-prototype metric bundles. Hanging the bundles off the entry
// lets the β hot path reuse the services-map lookup it already pays for —
// no second hash, no extra lock. A service implements very few prototypes,
// so resolution is a short slice scan over an immutable snapshot.
type svcEntry struct {
	svc Service
	// providers lists the nodes replicating this reference, sorted by
	// descending rendezvous score (see provider.go); empty for plain
	// single-service registrations. svc always aliases the routing owner
	// (providers[0].svc) when providers exist. batchCounted tracks whether
	// this entry is counted in Registry.batchable.
	providers    []provider
	batchCounted bool

	im   atomic.Pointer[[]protoMetrics]
	imMu sync.Mutex // serializes bundle creation; readers go through im
}

type protoMetrics struct {
	proto string
	im    *invokeMetrics
}

func (e *svcEntry) metricsFor(proto, ref string) *invokeMetrics {
	if list := e.im.Load(); list != nil {
		for i := range *list {
			if (*list)[i].proto == proto {
				return (*list)[i].im
			}
		}
	}
	e.imMu.Lock()
	defer e.imMu.Unlock()
	var list []protoMetrics
	if p := e.im.Load(); p != nil {
		list = *p
		for i := range list {
			if list[i].proto == proto {
				return list[i].im
			}
		}
	}
	key := proto + "|" + ref
	im := &invokeMetrics{
		calls:    obs.Default.Counter(obs.Key("service.invoke.calls", key)),
		latency:  obs.Default.Histogram(obs.Key("service.invoke.latency", key)),
		retries:  obs.Default.Counter(obs.Key("service.invoke.retries", key)),
		failures: obs.Default.Counter(obs.Key("service.invoke.failures", key)),
	}
	next := append(append(make([]protoMetrics, 0, len(list)+1), list...), protoMetrics{proto, im})
	e.im.Store(&next)
	return im
}

// CtxService is an optional Service extension for implementations that can
// honor a context deadline natively (remote proxies propagate it to the
// wire round trip). Services without it are driven through a goroutine and
// abandoned when the deadline fires — the call is bounded either way.
type CtxService interface {
	Service
	InvokeCtx(ctx context.Context, proto string, input value.Tuple, at Instant) ([]value.Tuple, error)
}

// SetInvokeTimeout bounds every physical invocation through this registry:
// a service (local or remote) that does not answer within d fails with
// context.DeadlineExceeded instead of stalling the operator. d <= 0
// disables the bound (the default).
func (r *Registry) SetInvokeTimeout(d time.Duration) {
	r.mu.Lock()
	r.invokeTimeout = d
	r.mu.Unlock()
}

// SetAdmissionLimit caps concurrent physical invocations through this
// registry: at most maxInFlight run at once, up to maxQueue more wait at
// most queueTimeout for a slot, and everyone beyond that fails fast with
// resilience.ErrOverloaded (which the query layer's degradation policies
// absorb like any β failure). Admission composes with breakers — a slot is
// taken only for the physical attempt, after the breaker gate — and
// rejections do NOT feed breaker failure counts: an overloaded caller says
// nothing about the callee's health. maxInFlight <= 0 removes the limit.
func (r *Registry) SetAdmissionLimit(maxInFlight, maxQueue int, queueTimeout time.Duration) {
	var l *resilience.Limiter
	if maxInFlight > 0 {
		l = resilience.NewLimiter(maxInFlight, maxQueue, queueTimeout)
	}
	r.mu.Lock()
	r.admission = l
	r.mu.Unlock()
}

// AdmissionStats reports the limiter's live occupancy (zeros when no limit
// is set).
func (r *Registry) AdmissionStats() (inFlight, queued int, rejected int64, enabled bool) {
	r.mu.RLock()
	l := r.admission
	r.mu.RUnlock()
	if l == nil {
		return 0, 0, 0, false
	}
	inFlight, queued, rejected = l.Stats()
	return inFlight, queued, rejected, true
}

// SetRetryPolicy installs a retry policy for failed invocations. Retries
// apply ONLY to passive prototypes: re-invoking an active prototype would
// duplicate the query's action set (Definition 8) — the same soundness rule
// that restricts the paper's Table 5 rewritings to passive invocations. The
// zero policy disables retrying (the default).
func (r *Registry) SetRetryPolicy(p resilience.RetryPolicy) {
	r.mu.Lock()
	r.retry = p
	r.mu.Unlock()
}

// EnableBreakers attaches per-service circuit breakers: after
// FailureThreshold consecutive failures a service's breaker opens, calls to
// it short-circuit with resilience.ErrOpen (no physical attempt), and the
// service is masked out of Implementing — an open breaker looks like
// temporary service withdrawal to the discovery X-Relations. After the
// cooldown a half-open probe tests recovery. The returned set can be
// inspected for operational visibility.
func (r *Registry) EnableBreakers(policy resilience.BreakerPolicy) *resilience.BreakerSet {
	if policy.OnTransition == nil {
		policy.OnTransition = func(from, to resilience.State) {
			obs.Default.Counter(obs.Key("resilience.breaker.transitions", from.String()+"->"+to.String())).Inc()
		}
	}
	set := resilience.NewBreakerSet(policy)
	r.mu.Lock()
	r.breakers = set
	r.mu.Unlock()
	return set
}

// Breakers returns the attached breaker set, or nil when disabled.
func (r *Registry) Breakers() *resilience.BreakerSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.breakers
}

// InvokeCtx is Invoke with cancellation and deadline propagation: the
// context bounds every attempt (and the backoff between attempts), layered
// under the registry's per-invocation timeout if one is set.
func (r *Registry) InvokeCtx(ctx context.Context, proto, ref string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	r.mu.RLock()
	p, okP := r.protos[proto]
	e, okS := r.services[ref]
	retry := r.retry
	breakers := r.breakers
	nodeBreakers := r.nodeBreakers
	timeout := r.invokeTimeout
	admission := r.admission
	var cands []provider
	if okS {
		cands = e.candidates(nodeBreakers)
	}
	r.mu.RUnlock()
	if !okP {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrototype, proto)
	}
	if !okS {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, ref)
	}
	impl := cands[:0:0]
	for _, c := range cands {
		if c.svc.Implements(proto) {
			impl = append(impl, c)
		}
	}
	if len(impl) == 0 {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotImplemented, proto, ref)
	}
	cands = impl
	in, err := p.Input.Conforms(input)
	if err != nil {
		return nil, fmt.Errorf("service: invoke %s on %s: input: %w", proto, ref, err)
	}
	if p.Active {
		// An active request that reaches a peer must never be transparently
		// re-sent by the transport: a lost answer surfaces as
		// ErrOutcomeUnknown instead, and the layers above pin the action.
		ctx = resilience.WithNoResend(ctx)
	}

	// Retries are sound only for passive prototypes: an active invocation
	// is an action, and at-most-once delivery of actions is part of the
	// algebra's semantics.
	attempts := 1
	if !p.Active && retry.MaxAttempts > 1 {
		attempts = retry.MaxAttempts
	}
	im := e.metricsFor(proto, ref)
	obsInvokeCalls.Inc()
	// Counters are exact; latency is sampled — the first call per
	// (prototype, service) and every 8th after that. The two clock reads
	// and two histogram updates are the costliest part of always-on
	// instrumentation, and an in-process invocation is only ~1µs, so
	// sampling is what keeps the β hot path inside the ≤5% overhead
	// budget. The sampled distribution remains representative —
	// invocation latency does not correlate with the call index — and
	// sampling call 1 means even a single invocation shows up in
	// .metrics.
	nCall := im.calls.Next()
	sampleLatency := nCall == 1 || nCall&7 == 0
	// The enclosing β span, when this evaluation is sampled. The Active()
	// gate keeps the untraced hot path to one atomic load — no ctx.Value
	// walk, no interface assertion.
	var span *trace.Span
	if trace.Default.Active() {
		span = trace.FromContext(ctx)
	}
	var rows []value.Tuple
	var lastErr error
	tried := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.SleepCtx(ctx, retry.Backoff(attempt-1, proto+"|"+ref)); err != nil {
				break // the deadline expired during backoff; report the last failure
			}
			obsInvokeRetries.Inc()
			im.retries.Inc()
		}
		if breakers != nil && !breakers.Allow(ref) {
			obsInvokeShortCirc.Inc()
			span.SetAttr("breaker", "open")
			return nil, fmt.Errorf("service: invoke %s on %s: %w", proto, ref, resilience.ErrOpen)
		}
		tried++
		// Admission is per physical attempt: the slot is never held across
		// a retry backoff, and a rejection is a fast local failure that
		// does NOT feed the breaker — overload here says nothing about the
		// callee's health.
		if admission != nil {
			if err := admission.Acquire(ctx); err != nil {
				if errors.Is(err, resilience.ErrOverloaded) {
					obsInvokeOverload.Inc()
					span.SetAttr("admission", "rejected")
				}
				lastErr = err
				if ctx.Err() != nil {
					break
				}
				continue
			}
		}
		var start time.Time
		if sampleLatency {
			start = time.Now()
		}
		rows, lastErr = invokeCandidates(ctx, cands, nodeBreakers, p.Active, proto, in, at, timeout, span)
		if admission != nil {
			admission.Release()
		}
		if sampleLatency {
			elapsed := time.Since(start)
			obsInvokeLatency.Observe(elapsed)
			im.latency.Observe(elapsed)
		}
		if breakers != nil {
			breakers.OnResult(ref, lastErr == nil)
		}
		if lastErr == nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	if tried > 1 {
		span.SetAttrInt("attempts", int64(tried))
	}
	if lastErr != nil {
		obsInvokeFailures.Inc()
		im.failures.Inc()
		return nil, fmt.Errorf("service: invoke %s on %s: %w", proto, ref, lastErr)
	}

	out := make([]value.Tuple, len(rows))
	for i, row := range rows {
		c, err := p.Output.Conforms(row)
		if err != nil {
			return nil, fmt.Errorf("service: invoke %s on %s: output tuple %d: %w", proto, ref, i, err)
		}
		out[i] = c
	}
	return out, nil
}

// invokeCandidates runs one physical attempt across a reference's
// providers in routing order: the rendezvous owner first, then — on
// transport-class failures only — the surviving replicas, all within the
// same call (so a tick evaluated during a node loss still sees the same
// rows the never-crashed control would). Application errors never fail
// over: the owner answered, and Section 3.2 determinism means a replica
// would answer the same. Active invocations fail over only on
// ErrUnreachable (the request never left this node); once an active
// request MAY have reached a peer (ErrOutcomeUnknown) it is never re-fired
// — the error propagates for the query layer to pin (Definition 8). Each
// attempt is individually bounded by the per-invocation timeout.
func invokeCandidates(ctx context.Context, cands []provider, nb *resilience.BreakerSet, active bool, proto string, in value.Tuple, at Instant, timeout time.Duration, span *trace.Span) ([]value.Tuple, error) {
	var lastErr error
	for i, c := range cands {
		if i > 0 {
			obsInvokeFailovers.Inc()
		}
		rows, err := callService(ctx, c.svc, proto, in, at, timeout)
		onProviderResult(nb, c, err)
		if err == nil {
			if i > 0 {
				span.SetAttr("failover_node", c.node)
			}
			return rows, nil
		}
		lastErr = err
		if ctx.Err() != nil || !resilience.IsTransport(err) {
			return nil, err
		}
		if active && !errors.Is(err, resilience.ErrUnreachable) {
			return nil, err
		}
	}
	if len(cands) > 1 {
		obsInvokeExhausted.Inc()
	}
	return nil, lastErr
}

// callService runs one physical attempt, bounded by the per-invocation
// timeout and the caller's context. Context-aware services get the context
// directly; others run in a goroutine that is abandoned (never joined) if
// the deadline fires first — its eventual result is discarded.
func callService(ctx context.Context, s Service, proto string, in value.Tuple, at Instant, timeout time.Duration) ([]value.Tuple, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if cs, ok := s.(CtxService); ok {
		return cs.InvokeCtx(ctx, proto, in, at)
	}
	if ctx.Done() == nil {
		return s.Invoke(proto, in, at)
	}
	type result struct {
		rows []value.Tuple
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		rows, err := s.Invoke(proto, in, at)
		ch <- result{rows, err}
	}()
	select {
	case res := <-ch:
		return res.rows, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
