package service

import (
	"context"
	"fmt"
	"time"

	"serena/internal/resilience"
	"serena/internal/value"
)

// CtxService is an optional Service extension for implementations that can
// honor a context deadline natively (remote proxies propagate it to the
// wire round trip). Services without it are driven through a goroutine and
// abandoned when the deadline fires — the call is bounded either way.
type CtxService interface {
	Service
	InvokeCtx(ctx context.Context, proto string, input value.Tuple, at Instant) ([]value.Tuple, error)
}

// SetInvokeTimeout bounds every physical invocation through this registry:
// a service (local or remote) that does not answer within d fails with
// context.DeadlineExceeded instead of stalling the operator. d <= 0
// disables the bound (the default).
func (r *Registry) SetInvokeTimeout(d time.Duration) {
	r.mu.Lock()
	r.invokeTimeout = d
	r.mu.Unlock()
}

// SetRetryPolicy installs a retry policy for failed invocations. Retries
// apply ONLY to passive prototypes: re-invoking an active prototype would
// duplicate the query's action set (Definition 8) — the same soundness rule
// that restricts the paper's Table 5 rewritings to passive invocations. The
// zero policy disables retrying (the default).
func (r *Registry) SetRetryPolicy(p resilience.RetryPolicy) {
	r.mu.Lock()
	r.retry = p
	r.mu.Unlock()
}

// EnableBreakers attaches per-service circuit breakers: after
// FailureThreshold consecutive failures a service's breaker opens, calls to
// it short-circuit with resilience.ErrOpen (no physical attempt), and the
// service is masked out of Implementing — an open breaker looks like
// temporary service withdrawal to the discovery X-Relations. After the
// cooldown a half-open probe tests recovery. The returned set can be
// inspected for operational visibility.
func (r *Registry) EnableBreakers(policy resilience.BreakerPolicy) *resilience.BreakerSet {
	set := resilience.NewBreakerSet(policy)
	r.mu.Lock()
	r.breakers = set
	r.mu.Unlock()
	return set
}

// Breakers returns the attached breaker set, or nil when disabled.
func (r *Registry) Breakers() *resilience.BreakerSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.breakers
}

// InvokeCtx is Invoke with cancellation and deadline propagation: the
// context bounds every attempt (and the backoff between attempts), layered
// under the registry's per-invocation timeout if one is set.
func (r *Registry) InvokeCtx(ctx context.Context, proto, ref string, input value.Tuple, at Instant) ([]value.Tuple, error) {
	r.mu.RLock()
	p, okP := r.protos[proto]
	s, okS := r.services[ref]
	retry := r.retry
	breakers := r.breakers
	timeout := r.invokeTimeout
	r.mu.RUnlock()
	if !okP {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrototype, proto)
	}
	if !okS {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, ref)
	}
	if !s.Implements(proto) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotImplemented, proto, ref)
	}
	in, err := p.Input.Conforms(input)
	if err != nil {
		return nil, fmt.Errorf("service: invoke %s on %s: input: %w", proto, ref, err)
	}

	// Retries are sound only for passive prototypes: an active invocation
	// is an action, and at-most-once delivery of actions is part of the
	// algebra's semantics.
	attempts := 1
	if !p.Active && retry.MaxAttempts > 1 {
		attempts = retry.MaxAttempts
	}
	var rows []value.Tuple
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.SleepCtx(ctx, retry.Backoff(attempt-1, proto+"|"+ref)); err != nil {
				break // the deadline expired during backoff; report the last failure
			}
		}
		if breakers != nil && !breakers.Allow(ref) {
			return nil, fmt.Errorf("service: invoke %s on %s: %w", proto, ref, resilience.ErrOpen)
		}
		rows, lastErr = callService(ctx, s, proto, in, at, timeout)
		if breakers != nil {
			breakers.OnResult(ref, lastErr == nil)
		}
		if lastErr == nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("service: invoke %s on %s: %w", proto, ref, lastErr)
	}

	out := make([]value.Tuple, len(rows))
	for i, row := range rows {
		c, err := p.Output.Conforms(row)
		if err != nil {
			return nil, fmt.Errorf("service: invoke %s on %s: output tuple %d: %w", proto, ref, i, err)
		}
		out[i] = c
	}
	return out, nil
}

// callService runs one physical attempt, bounded by the per-invocation
// timeout and the caller's context. Context-aware services get the context
// directly; others run in a goroutine that is abandoned (never joined) if
// the deadline fires first — its eventual result is discarded.
func callService(ctx context.Context, s Service, proto string, in value.Tuple, at Instant, timeout time.Duration) ([]value.Tuple, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if cs, ok := s.(CtxService); ok {
		return cs.InvokeCtx(ctx, proto, in, at)
	}
	if ctx.Done() == nil {
		return s.Invoke(proto, in, at)
	}
	type result struct {
		rows []value.Tuple
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		rows, err := s.Invoke(proto, in, at)
		ch <- result{rows, err}
	}()
	select {
	case res := <-ch:
		return res.rows, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
