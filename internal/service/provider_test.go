package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"serena/internal/resilience"
	"serena/internal/value"
)

// errHealed marks a previously failing replica as healthy again
// (atomic.Value cannot store nil).
var errHealed = errors.New("healed")

func loadFault(v *atomic.Value) error {
	e, _ := v.Load().(error)
	if e == nil || errors.Is(e, errHealed) {
		return nil
	}
	return e
}

// replicaSensor builds a passive provider whose failure mode is switchable:
// store a transport sentinel (or any error) in errp to make it fail,
// errHealed to heal it. calls counts physical invocations.
func replicaSensor(ref string, errp *atomic.Value, calls *atomic.Int64) *Func {
	return NewFunc(ref, map[string]InvokeFunc{
		"getTemperature": func(_ value.Tuple, at Instant) ([]value.Tuple, error) {
			calls.Add(1)
			if e := loadFault(errp); e != nil {
				return nil, fmt.Errorf("link to %s: %w", ref, e)
			}
			return []value.Tuple{{value.NewReal(20 + float64(at))}}, nil
		},
	})
}

// replicaMessenger is the active counterpart (sendMessage has effects).
func replicaMessenger(ref string, errp *atomic.Value, calls *atomic.Int64) *Func {
	return NewFunc(ref, map[string]InvokeFunc{
		"sendMessage": func(in value.Tuple, _ Instant) ([]value.Tuple, error) {
			calls.Add(1)
			if e := loadFault(errp); e != nil {
				return nil, fmt.Errorf("link to %s: %w", ref, e)
			}
			return []value.Tuple{{value.NewBool(true)}}, nil
		},
	})
}

// twoProviders registers ref on nodes n1/n2 and returns (ownerNode,
// ownerErr, ownerCalls, backupErr, backupCalls) with the owner resolved
// from the registry's own rendezvous order — tests must not hard-code which
// node wins the hash.
func twoProviders(t *testing.T, r *Registry, ref string, active bool) (string, *atomic.Value, *atomic.Int64, *atomic.Value, *atomic.Int64) {
	t.Helper()
	var err1, err2 atomic.Value
	var calls1, calls2 atomic.Int64
	mk := replicaSensor
	if active {
		mk = replicaMessenger
	}
	if err := r.RegisterProvider("n1", mk(ref, &err1, &calls1)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProvider("n2", mk(ref, &err2, &calls2)); err != nil {
		t.Fatal(err)
	}
	nodes := r.ProviderNodes(ref)
	if len(nodes) != 2 {
		t.Fatalf("ProviderNodes = %v", nodes)
	}
	if nodes[0] == "n1" {
		return "n1", &err1, &calls1, &err2, &calls2
	}
	return "n2", &err2, &calls2, &err1, &calls1
}

func TestRendezvousOwnershipDeterministic(t *testing.T) {
	// The owner of (ref, nodes) is a pure function of the names: two
	// registries that learn the providers in opposite orders agree.
	a := newTestRegistry(t)
	b := newTestRegistry(t)
	var e atomic.Value
	var c atomic.Int64
	for _, n := range []string{"n1", "n2", "n3"} {
		if err := a.RegisterProvider(n, replicaSensor("s", &e, &c)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"n3", "n2", "n1"} {
		if err := b.RegisterProvider(n, replicaSensor("s", &e, &c)); err != nil {
			t.Fatal(err)
		}
	}
	an, bn := a.ProviderNodes("s"), b.ProviderNodes("s")
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("rendezvous order differs: %v vs %v", an, bn)
		}
	}
	// Losing a non-owner node never remaps the owner (minimal disruption).
	owner := an[0]
	for _, n := range an[1:] {
		if err := a.UnregisterProvider(n, "s"); err != nil {
			t.Fatal(err)
		}
		if got := a.ProviderNodes("s")[0]; got != owner {
			t.Fatalf("owner remapped from %s to %s on losing %s", owner, got, n)
		}
	}
}

func TestProviderReplicaMasking(t *testing.T) {
	// Watchers see Added once, on the FIRST provider; replicas arriving and
	// leaving raise nothing; only the LAST provider's departure is Removed.
	r := newTestRegistry(t)
	events, cancel := r.Watch()
	defer cancel()
	var e atomic.Value
	var c atomic.Int64

	if err := r.RegisterProvider("n1", replicaSensor("s", &e, &c)); err != nil {
		t.Fatal(err)
	}
	if ev := <-events; ev.Kind != Added || ev.Ref != "s" {
		t.Fatalf("first provider event = %+v", ev)
	}
	if err := r.RegisterProvider("n2", replicaSensor("s", &e, &c)); err != nil {
		t.Fatal(err)
	}
	if err := r.UnregisterProvider("n1", "s"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("replica churn leaked event %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
	if err := r.UnregisterProvider("n2", "s"); err != nil {
		t.Fatal(err)
	}
	if ev := <-events; ev.Kind != Removed || ev.Ref != "s" {
		t.Fatalf("last provider event = %+v", ev)
	}
}

func TestLocalRefsExcludeProviders(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.Register(tempService("mine", 20)); err != nil {
		t.Fatal(err)
	}
	var e atomic.Value
	var c atomic.Int64
	if err := r.RegisterProvider("n1", replicaSensor("theirs", &e, &c)); err != nil {
		t.Fatal(err)
	}
	if got := r.LocalRefs(); len(got) != 1 || got[0] != "mine" {
		t.Fatalf("LocalRefs = %v, want [mine]", got)
	}
	// A plain-registered reference never gains providers: the node owns it.
	if err := r.RegisterProvider("n2", tempService("mine", 21)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("provider over plain ref: err = %v, want ErrDuplicate", err)
	}
}

func TestPassiveFailoverOnTransportError(t *testing.T) {
	r := newTestRegistry(t)
	for _, sentinel := range []error{resilience.ErrUnreachable, resilience.ErrOutcomeUnknown} {
		ref := fmt.Sprintf("s-%p", sentinel)
		_, ownerErr, ownerCalls, _, backupCalls := twoProviders(t, r, ref, false)
		ownerErr.Store(sentinel)
		rows, err := r.InvokeCtx(context.Background(), "getTemperature", ref, nil, 3)
		if err != nil || len(rows) != 1 {
			t.Fatalf("%v: failover invoke = %v, %v", sentinel, rows, err)
		}
		if ownerCalls.Load() != 1 || backupCalls.Load() != 1 {
			t.Fatalf("%v: calls owner=%d backup=%d, want 1/1", sentinel, ownerCalls.Load(), backupCalls.Load())
		}
	}
}

func TestNoFailoverOnApplicationError(t *testing.T) {
	// A node that ANSWERS with an error is healthy: rerouting would mask a
	// genuine device fault and double real work.
	r := newTestRegistry(t)
	_, ownerErr, _, _, backupCalls := twoProviders(t, r, "s", false)
	appErr := errors.New("sensor broke")
	ownerErr.Store(appErr)
	if _, err := r.InvokeCtx(context.Background(), "getTemperature", "s", nil, 3); !errors.Is(err, appErr) {
		t.Fatalf("err = %v, want the device error", err)
	}
	if backupCalls.Load() != 0 {
		t.Fatalf("application error leaked to the replica (%d calls)", backupCalls.Load())
	}
}

func TestActiveFailoverRules(t *testing.T) {
	r := newTestRegistry(t)
	in := value.Tuple{value.NewString("a@b"), value.NewString("hi")}

	// ErrUnreachable — the request never left — is safe to re-fire on a
	// replica even for an active invocation.
	_, ownerErr, _, _, backupCalls := twoProviders(t, r, "msg1", true)
	ownerErr.Store(resilience.ErrUnreachable)
	rows, err := r.InvokeCtx(context.Background(), "sendMessage", "msg1", in, 3)
	if err != nil || len(rows) != 1 {
		t.Fatalf("active unreachable failover = %v, %v", rows, err)
	}
	if backupCalls.Load() != 1 {
		t.Fatalf("backup calls = %d, want 1", backupCalls.Load())
	}

	// ErrOutcomeUnknown — the request MAY have fired — must never be
	// re-sent: Definition 8's effects are at-most-once.
	_, ownerErr2, _, _, backupCalls2 := twoProviders(t, r, "msg2", true)
	ownerErr2.Store(resilience.ErrOutcomeUnknown)
	if _, err := r.InvokeCtx(context.Background(), "sendMessage", "msg2", in, 3); !errors.Is(err, resilience.ErrOutcomeUnknown) {
		t.Fatalf("err = %v, want ErrOutcomeUnknown", err)
	}
	if backupCalls2.Load() != 0 {
		t.Fatalf("outcome-unknown active was re-fired on the replica (%d calls)", backupCalls2.Load())
	}
}

func TestNodeBreakerDemotesOpenNode(t *testing.T) {
	r := newTestRegistry(t)
	r.SetNodeBreakerPolicy(resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	ownerNode, ownerErr, ownerCalls, _, backupCalls := twoProviders(t, r, "s", false)

	ownerErr.Store(resilience.ErrUnreachable)
	if _, err := r.InvokeCtx(context.Background(), "getTemperature", "s", nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.NodeBreakerStates()[ownerNode]; got != resilience.Open {
		t.Fatalf("owner breaker = %v, want Open", got)
	}

	// The owner heals, but with its breaker open the replica is tried
	// first: no traffic goes to a node presumed down.
	ownerErr.Store(errHealed)
	before := ownerCalls.Load()
	if _, err := r.InvokeCtx(context.Background(), "getTemperature", "s", nil, 2); err != nil {
		t.Fatal(err)
	}
	if ownerCalls.Load() != before {
		t.Fatalf("open-breaker owner still received traffic")
	}
	if backupCalls.Load() != 2 {
		t.Fatalf("backup calls = %d, want 2", backupCalls.Load())
	}
}

// batchReplica is a provider with a wire-style batch transport.
type batchReplica struct {
	*Func
	errp       *atomic.Value
	batchCalls atomic.Int64
}

func (b *batchReplica) InvokeBatchCtx(_ context.Context, _ string, inputs []value.Tuple, at Instant) []InvokeResult {
	b.batchCalls.Add(1)
	out := make([]InvokeResult, len(inputs))
	for i := range inputs {
		if e := loadFault(b.errp); e != nil {
			out[i] = InvokeResult{Err: fmt.Errorf("batch link: %w", e)}
			continue
		}
		out[i] = InvokeResult{Rows: []value.Tuple{{value.NewReal(20 + float64(at))}}}
	}
	return out
}

func TestBatchFailoverReroutesFailedItems(t *testing.T) {
	r := newTestRegistry(t)
	var err1, err2 atomic.Value
	var c1, c2 atomic.Int64
	b1 := &batchReplica{Func: replicaSensor("s", &err1, &c1), errp: &err1}
	b2 := &batchReplica{Func: replicaSensor("s", &err2, &c2), errp: &err2}
	if err := r.RegisterProvider("n1", b1); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProvider("n2", b2); err != nil {
		t.Fatal(err)
	}
	owner, backup := b1, b2
	if r.ProviderNodes("s")[0] == "n2" {
		owner, backup = b2, b1
	}
	owner.errp.Store(resilience.ErrOutcomeUnknown)

	inputs := []value.Tuple{nil, nil, nil}
	results := r.InvokeBatchCtx(context.Background(), "getTemperature", "s", inputs, 4)
	for i, res := range results {
		if res.Err != nil || len(res.Rows) != 1 {
			t.Fatalf("item %d after batch failover: %v, %v", i, res.Rows, res.Err)
		}
	}
	if owner.batchCalls.Load() != 1 || backup.batchCalls.Load() != 1 {
		t.Fatalf("batch frames owner=%d backup=%d, want one each", owner.batchCalls.Load(), backup.batchCalls.Load())
	}
}
