// Federation support: one service reference backed by several providers.
//
// In a multi-node PEMS the same service reference may be announced by more
// than one pemsd node (a replicated sensor, a mirrored gateway). The
// registry keeps every provider but exposes ONE service per reference —
// Definition 1's invoke_ψ stays a function — routed by rendezvous hashing:
// the provider with the highest hash(ref, node) owns the reference. Every
// node computes the same owner independently, and losing a node only remaps
// the references it owned (the minimal-disruption property that made
// rendezvous hashing the standard cluster-ownership rule).
//
// Node loss is masked at two layers. Discovery removes the dead node's
// providers — the reference survives as long as one replica remains, and
// watchers see NO Removed event (that is the masking: to the discovery
// X-Relations nothing happened). In-flight calls fail over inside the same
// invocation: a transport-class failure (resilience.ErrUnreachable /
// ErrOutcomeUnknown) reroutes to the next provider in rendezvous order,
// subject to the Definition 8 rule that an active invocation with an
// unknown outcome is never re-fired.
package service

import (
	"fmt"
	"sort"

	"serena/internal/obs"
	"serena/internal/resilience"
)

// Failover metrics: calls rerouted to a surviving replica, and calls that
// ran out of replicas.
var (
	obsInvokeFailovers = obs.Default.Counter("service.invoke.failovers")
	obsInvokeExhausted = obs.Default.Counter("service.invoke.failover_exhausted")
)

// provider is one node's implementation of a replicated service reference.
type provider struct {
	node  string
	svc   Service
	score uint64 // rendezvous score of (ref, node); owner = max
}

// rendezvousScore hashes (ref, node) to the provider's routing weight:
// FNV-1a with a splitmix-style finalizer (FNV alone avalanches its final
// bytes poorly over near-identical keys like node1/node2).
func rendezvousScore(ref, node string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(ref); i++ {
		h ^= uint64(ref[i])
		h *= prime
	}
	h ^= '|'
	h *= prime
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// RegisterProvider adds node's implementation of a service reference. The
// first provider of a reference creates it (watchers see Added, exactly
// like Register); later providers of the same reference are replicas and
// raise NO event — to discovery the environment did not change. The
// rendezvous owner among current providers backs Lookup and receives
// invocations first. A reference created by plain Register cannot gain
// providers (ErrDuplicate), and re-registering the same node replaces its
// provider in place.
func (r *Registry) RegisterProvider(node string, s Service) error {
	if node == "" {
		return fmt.Errorf("service: provider needs a node name")
	}
	if s == nil || s.Ref() == "" {
		return fmt.Errorf("service: service needs a non-empty reference")
	}
	ref := s.Ref()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, pn := range s.PrototypeNames() {
		if _, ok := r.protos[pn]; !ok {
			return fmt.Errorf("%w: %s (claimed by service %s)", ErrUnknownPrototype, pn, ref)
		}
	}
	e, ok := r.services[ref]
	if ok && len(e.providers) == 0 {
		return fmt.Errorf("%w: service %s (registered without a provider node)", ErrDuplicate, ref)
	}
	p := provider{node: node, svc: s, score: rendezvousScore(ref, node)}
	if !ok {
		e = &svcEntry{svc: s, providers: []provider{p}}
		r.services[ref] = e
		r.recountBatchableLocked(e, true)
		if r.breakers != nil {
			r.breakers.Reset(ref)
		}
		r.broadcastLocked(Event{Kind: Added, Ref: ref, Prototypes: s.PrototypeNames()})
		return nil
	}
	replaced := false
	for i := range e.providers {
		if e.providers[i].node == node {
			e.providers[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		e.providers = append(e.providers, p)
	}
	e.reownLocked()
	r.recountBatchableLocked(e, false)
	return nil
}

// UnregisterProvider removes node's provider of a reference. The reference
// survives — silently, with ownership remapped — while any replica remains;
// only the LAST provider's departure removes the reference and raises
// Removed. Unknown (node, ref) pairs error.
func (r *Registry) UnregisterProvider(node, ref string) error {
	r.mu.Lock()
	e, ok := r.services[ref]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownService, ref)
	}
	idx := -1
	for i := range e.providers {
		if e.providers[i].node == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s has no provider on node %q", ErrUnknownService, ref, node)
	}
	e.providers = append(e.providers[:idx], e.providers[idx+1:]...)
	if len(e.providers) > 0 {
		e.reownLocked()
		r.recountBatchableLocked(e, false)
		r.mu.Unlock()
		return nil
	}
	delete(r.services, ref)
	if e.batchCounted {
		r.batchable--
	}
	r.broadcastLocked(Event{Kind: Removed, Ref: ref, Prototypes: e.svc.PrototypeNames()})
	r.mu.Unlock()
	return nil
}

// LocalRefs returns the sorted references registered directly (plain
// Register), excluding provider-backed entries discovered from other nodes.
// This is the set a node exports as ITS OWN over the wire (Describe) and in
// discovery announcements: re-exporting discovered providers would make
// every node claim every service, turning failover routing into forwarding
// chains and ownership ambiguous.
func (r *Registry) LocalRefs() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.services))
	for ref, e := range r.services {
		if len(e.providers) == 0 {
			out = append(out, ref)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ProviderNodes reports the nodes providing a reference in rendezvous
// routing order (owner first). References registered without providers
// (plain Register) report nil.
func (r *Registry) ProviderNodes(ref string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.services[ref]
	if !ok || len(e.providers) == 0 {
		return nil
	}
	out := make([]string, len(e.providers))
	for i, p := range e.providers {
		out[i] = p.node
	}
	return out
}

// reownLocked re-sorts providers by descending rendezvous score (node name
// breaks exact-score ties deterministically) and points the entry's service
// at the owner. Callers hold r.mu.
func (e *svcEntry) reownLocked() {
	sort.Slice(e.providers, func(i, j int) bool {
		if e.providers[i].score != e.providers[j].score {
			return e.providers[i].score > e.providers[j].score
		}
		return e.providers[i].node < e.providers[j].node
	})
	e.svc = e.providers[0].svc
}

// recountBatchableLocked reconciles the registry's batch-transport count
// with the entry's current providers (any batch-capable provider counts the
// entry once). Callers hold r.mu; created marks a brand-new entry.
func (r *Registry) recountBatchableLocked(e *svcEntry, created bool) {
	has := false
	if len(e.providers) == 0 {
		_, has = e.svc.(BatchCtxService)
	} else {
		for _, p := range e.providers {
			if _, ok := p.svc.(BatchCtxService); ok {
				has = true
				break
			}
		}
	}
	if created {
		e.batchCounted = has
		if has {
			r.batchable++
		}
		return
	}
	if has && !e.batchCounted {
		r.batchable++
	} else if !has && e.batchCounted {
		r.batchable--
	}
	e.batchCounted = has
}

// SetNodeBreakerPolicy replaces the per-NODE breaker set's policy (and
// resets its state). Node breakers are always on — they are fed exclusively
// by transport-class outcomes, so a healthy single-process deployment never
// trips one — and an Open node breaker deprioritizes ALL of that node's
// providers in routing order, the cluster-level analogue of how an open
// per-service breaker masks one reference.
func (r *Registry) SetNodeBreakerPolicy(policy resilience.BreakerPolicy) {
	if policy.OnTransition == nil {
		policy.OnTransition = func(from, to resilience.State) {
			obs.Default.Counter(obs.Key("resilience.node_breaker.transitions", from.String()+"->"+to.String())).Inc()
		}
	}
	set := resilience.NewBreakerSet(policy)
	r.mu.Lock()
	r.nodeBreakers = set
	r.mu.Unlock()
}

// NodeBreakers returns the per-node breaker set (never nil).
func (r *Registry) NodeBreakers() *resilience.BreakerSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodeBreakers
}

// NodeBreakerStates snapshots every tracked node breaker.
func (r *Registry) NodeBreakerStates() map[string]resilience.State {
	return r.NodeBreakers().States()
}

// candidates snapshots the services to try for one invocation, in routing
// order: providers by rendezvous score, with providers on Open-breaker
// nodes demoted to the back (still last-resort reachable — if every node
// looks down, trying one beats failing without a call). Single-service
// entries yield themselves. Callers hold r.mu (read side suffices).
func (e *svcEntry) candidates(nb *resilience.BreakerSet) []provider {
	if len(e.providers) == 0 {
		return []provider{{svc: e.svc}}
	}
	out := make([]provider, 0, len(e.providers))
	var demoted []provider
	for _, p := range e.providers {
		if nb != nil && nb.State(p.node) == resilience.Open {
			demoted = append(demoted, p)
			continue
		}
		out = append(out, p)
	}
	return append(out, demoted...)
}

// onProviderResult feeds a provider's transport outcome into the node
// breakers: successes and transport-class failures count, application
// errors do not (the node answered — it is healthy even if the device
// errored). Local candidates (no node) are skipped.
func onProviderResult(nb *resilience.BreakerSet, p provider, err error) {
	if nb == nil || p.node == "" {
		return
	}
	if err == nil {
		nb.OnResult(p.node, true)
		return
	}
	if resilience.IsTransport(err) {
		nb.OnResult(p.node, false)
	}
}
