package service_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

func probeProto() *schema.Prototype {
	return schema.MustPrototype("probe", nil,
		schema.MustRel(schema.Attribute{Name: "v", Type: value.Real}), false)
}

func fireProto() *schema.Prototype {
	return schema.MustPrototype("fire", nil,
		schema.MustRel(schema.Attribute{Name: "done", Type: value.Bool}), true)
}

// flakyN fails the first n invocations, then succeeds.
func flakyN(ref, proto string, n int64, calls *atomic.Int64) *service.Func {
	return service.NewFunc(ref, map[string]service.InvokeFunc{
		proto: func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			if calls.Add(1) <= n {
				return nil, errors.New("transient outage")
			}
			if proto == "fire" {
				return []value.Tuple{{value.NewBool(true)}}, nil
			}
			return []value.Tuple{{value.NewReal(21)}}, nil
		},
	})
}

func TestPassiveRetryRecovers(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	if err := reg.Register(flakyN("s", "probe", 2, &calls)); err != nil {
		t.Fatal(err)
	}
	reg.SetRetryPolicy(resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	rows, err := reg.Invoke("probe", "s", nil, 0)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(rows) != 1 || calls.Load() != 3 {
		t.Fatalf("rows = %v, physical calls = %d (want 3)", rows, calls.Load())
	}
}

func TestActivePrototypeNeverRetried(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(fireProto()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	if err := reg.Register(flakyN("a", "fire", 1, &calls)); err != nil {
		t.Fatal(err)
	}
	reg.SetRetryPolicy(resilience.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if _, err := reg.Invoke("fire", "a", nil, 0); err == nil {
		t.Fatal("failed active invocation reported success")
	}
	// Exactly one physical attempt: an active retry would duplicate the
	// action set (Definition 8).
	if calls.Load() != 1 {
		t.Fatalf("active prototype attempted %d times, want 1", calls.Load())
	}
}

func TestRetryStopsAtDeadline(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	if err := reg.Register(flakyN("s", "probe", 1000, &calls)); err != nil {
		t.Fatal(err)
	}
	reg.SetRetryPolicy(resilience.RetryPolicy{MaxAttempts: 1000, BaseDelay: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := reg.InvokeCtx(ctx, "probe", "s", nil, 0)
	if err == nil {
		t.Fatal("expected failure")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("retry loop outlived its deadline (%v)", time.Since(start))
	}
}

func TestInvokeTimeoutBoundsHangingService(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	hang := service.NewFunc("hang", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			<-release
			return []value.Tuple{{value.NewReal(0)}}, nil
		},
	})
	if err := reg.Register(hang); err != nil {
		t.Fatal(err)
	}
	defer close(release)
	reg.SetInvokeTimeout(30 * time.Millisecond)
	start := time.Now()
	_, err := reg.Invoke("probe", "hang", nil, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout too slow")
	}
}

func TestBreakerShortCircuitsAndRecovers(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	var now atomic.Int64 // fake clock, nanoseconds
	healthy := atomic.Bool{}
	inner := service.NewFunc("cam", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			if !healthy.Load() {
				return nil, errors.New("device down")
			}
			return []value.Tuple{{value.NewReal(1)}}, nil
		},
	})
	faulty := service.NewFaulty(inner, nil) // plan-free: just a call counter
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	reg.EnableBreakers(resilience.BreakerPolicy{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Now:              func() time.Time { return time.Unix(0, now.Load()) },
	})

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := reg.Invoke("probe", "cam", nil, service.Instant(i)); err == nil {
			t.Fatal("down device reported success")
		}
	}
	if got := reg.Breakers().State("cam"); got != resilience.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	// Open: calls short-circuit WITHOUT reaching the service.
	before := faulty.Calls()
	for i := 0; i < 5; i++ {
		_, err := reg.Invoke("probe", "cam", nil, 10)
		if !errors.Is(err, resilience.ErrOpen) {
			t.Fatalf("err = %v, want ErrOpen", err)
		}
	}
	if faulty.Calls() != before {
		t.Fatalf("open breaker leaked %d physical calls", faulty.Calls()-before)
	}
	// Open breaker masks the service out of discovery.
	if refs := reg.Implementing("probe"); len(refs) != 0 {
		t.Fatalf("open-breaker service still discoverable: %v", refs)
	}

	// Cooldown elapses; the service recovers; the half-open probe closes
	// the breaker and the service is discoverable again.
	healthy.Store(true)
	now.Store(int64(2 * time.Second))
	if _, err := reg.Invoke("probe", "cam", nil, 20); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := reg.Breakers().State("cam"); got != resilience.Closed {
		t.Fatalf("breaker state after probe = %v, want closed", got)
	}
	if refs := reg.Implementing("probe"); len(refs) != 1 {
		t.Fatalf("recovered service not discoverable: %v", refs)
	}
}

func TestReregisterResetsBreaker(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(probeProto()); err != nil {
		t.Fatal(err)
	}
	down := service.NewFunc("s", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			return nil, errors.New("down")
		},
	})
	if err := reg.Register(down); err != nil {
		t.Fatal(err)
	}
	reg.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	_, _ = reg.Invoke("probe", "s", nil, 0)
	if reg.Breakers().State("s") != resilience.Open {
		t.Fatal("breaker did not trip")
	}
	// The failing instance withdraws; a fresh one registers under the same
	// reference — it must start with a clean breaker.
	if err := reg.Unregister("s"); err != nil {
		t.Fatal(err)
	}
	up := service.NewFunc("s", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewReal(2)}}, nil
		},
	})
	if err := reg.Register(up); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Invoke("probe", "s", nil, 1); err != nil {
		t.Fatalf("re-registered service still broken: %v", err)
	}
}

func TestFaultyWrapperDeterminism(t *testing.T) {
	inner := service.NewFunc("s", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewReal(3)}}, nil
		},
	})
	plan := &resilience.FaultPlan{Seed: 7, FailureRate: 0.5}
	f1 := service.NewFaulty(inner, plan)
	f2 := service.NewFaulty(inner, plan)
	for at := service.Instant(0); at < 50; at++ {
		_, e1 := f1.Invoke("probe", nil, at)
		_, e2 := f2.Invoke("probe", nil, at)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("fault plan not deterministic at instant %d", at)
		}
	}
	if f1.Calls() != 50 {
		t.Fatalf("calls = %d", f1.Calls())
	}
	down := service.NewFaulty(inner, &resilience.FaultPlan{DownIntervals: [][2]int64{{2, 3}}})
	if _, err := down.Invoke("probe", nil, 2); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("down interval err = %v", err)
	}
	if _, err := down.Invoke("probe", nil, 4); err != nil {
		t.Fatalf("outside down interval: %v", err)
	}
}
