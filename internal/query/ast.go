// Package query implements Serena queries over a relational pervasive
// environment (Gripay et al., EDBT 2010, Definition 7): composable operator
// trees whose leaves are X-Relations, evaluated at a discrete time instant
// with action-set capture (Definition 8) and query-equivalence checking
// (Definition 9).
//
// The AST also carries the continuous operators Window and Stream
// (Section 4); those are only meaningful to the continuous executor in
// internal/cq — one-shot evaluation rejects them.
package query

import (
	"fmt"
	"strings"

	"serena/internal/algebra"
	"serena/internal/schema"
	"serena/internal/value"
)

// Node is one operator of a query tree.
type Node interface {
	// ResultSchema derives the output extended schema against an
	// environment, without evaluating tuples.
	ResultSchema(env Environment) (*schema.Extended, error)
	// Eval evaluates the subtree at the context's instant.
	Eval(ctx *Context) (*algebra.XRelation, error)
	// Children returns the direct operand subtrees.
	Children() []Node
	// String renders the subtree in Serena Algebra Language syntax.
	String() string
}

// Environment provides the X-Relations a query ranges over — the relational
// pervasive environment (Definition 5/6 in spirit: a set of named
// X-Relations).
type Environment interface {
	// Relation resolves a base relation by name.
	Relation(name string) (*algebra.XRelation, error)
}

// MapEnv is an Environment backed by a map.
type MapEnv map[string]*algebra.XRelation

// Relation implements Environment.
func (m MapEnv) Relation(name string) (*algebra.XRelation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown relation %q", name)
	}
	return r, nil
}

// ---------------------------------------------------------------------------

// Base is a leaf referencing a named X-Relation of the environment.
type Base struct{ Name string }

// NewBase returns a base-relation leaf.
func NewBase(name string) *Base { return &Base{Name: name} }

// ResultSchema implements Node.
func (b *Base) ResultSchema(env Environment) (*schema.Extended, error) {
	r, err := env.Relation(b.Name)
	if err != nil {
		return nil, err
	}
	return r.Schema(), nil
}

// Eval implements Node.
func (b *Base) Eval(ctx *Context) (*algebra.XRelation, error) {
	return ctx.Env.Relation(b.Name)
}

// Children implements Node.
func (b *Base) Children() []Node { return nil }

// String implements Node.
func (b *Base) String() string { return b.Name }

// ---------------------------------------------------------------------------

// Project is π_Y (Table 3a).
type Project struct {
	Child Node
	Attrs []string
}

// NewProject builds a projection node.
func NewProject(child Node, attrs ...string) *Project { return &Project{child, attrs} }

// ResultSchema implements Node.
func (p *Project) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := p.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	return schema.ProjectSchema(cs, p.Attrs)
}

// Eval implements Node.
func (p *Project) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := p.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return algebra.Project(c, p.Attrs)
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// String implements Node.
func (p *Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Attrs, ", "), p.Child)
}

// ---------------------------------------------------------------------------

// Select is σ_F (Table 3b).
type Select struct {
	Child   Node
	Formula algebra.Formula
}

// NewSelect builds a selection node.
func NewSelect(child Node, f algebra.Formula) *Select { return &Select{child, f} }

// ResultSchema implements Node.
func (s *Select) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := s.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	if err := s.Formula.Validate(cs); err != nil {
		return nil, err
	}
	return cs, nil
}

// Eval implements Node.
func (s *Select) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := s.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return algebra.Select(c, s.Formula)
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *Select) String() string {
	return fmt.Sprintf("select[%s](%s)", s.Formula, s.Child)
}

// ---------------------------------------------------------------------------

// Rename is ρ_{A→B} (Table 3c).
type Rename struct {
	Child    Node
	Old, New string
}

// NewRename builds a renaming node.
func NewRename(child Node, oldName, newName string) *Rename {
	return &Rename{child, oldName, newName}
}

// ResultSchema implements Node.
func (r *Rename) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := r.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	return schema.RenameSchema(cs, r.Old, r.New)
}

// Eval implements Node.
func (r *Rename) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := r.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return algebra.Rename(c, r.Old, r.New)
}

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.Child} }

// String implements Node.
func (r *Rename) String() string {
	return fmt.Sprintf("rename[%s -> %s](%s)", r.Old, r.New, r.Child)
}

// ---------------------------------------------------------------------------

// Join is the natural join ⋈ (Table 3d).
type Join struct{ Left, Right Node }

// NewJoin builds a natural-join node.
func NewJoin(left, right Node) *Join { return &Join{left, right} }

// ResultSchema implements Node.
func (j *Join) ResultSchema(env Environment) (*schema.Extended, error) {
	ls, err := j.Left.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	rs, err := j.Right.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	return schema.JoinSchema(ls, rs)
}

// Eval implements Node.
func (j *Join) Eval(ctx *Context) (*algebra.XRelation, error) {
	l, err := j.Left.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return algebra.NaturalJoin(l, r)
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// String implements Node.
func (j *Join) String() string { return fmt.Sprintf("join(%s, %s)", j.Left, j.Right) }

// ---------------------------------------------------------------------------

// SetOpKind selects a set operator.
type SetOpKind uint8

// The three set operators of Section 3.1.1.
const (
	UnionOp SetOpKind = iota
	IntersectOp
	DiffOp
)

var setOpNames = map[SetOpKind]string{UnionOp: "union", IntersectOp: "intersect", DiffOp: "diff"}

// SetOp is ∪, ∩ or − over two same-schema operands.
type SetOp struct {
	Kind        SetOpKind
	Left, Right Node
}

// NewUnion builds a union node.
func NewUnion(l, r Node) *SetOp { return &SetOp{UnionOp, l, r} }

// NewIntersect builds an intersection node.
func NewIntersect(l, r Node) *SetOp { return &SetOp{IntersectOp, l, r} }

// NewDiff builds a difference node.
func NewDiff(l, r Node) *SetOp { return &SetOp{DiffOp, l, r} }

// ResultSchema implements Node.
func (s *SetOp) ResultSchema(env Environment) (*schema.Extended, error) {
	ls, err := s.Left.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	rs, err := s.Right.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	if !ls.Equal(rs) {
		return nil, fmt.Errorf("query: %s requires identical schemas", setOpNames[s.Kind])
	}
	return ls, nil
}

// Eval implements Node.
func (s *SetOp) Eval(ctx *Context) (*algebra.XRelation, error) {
	l, err := s.Left.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := s.Right.Eval(ctx)
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case UnionOp:
		return algebra.Union(l, r)
	case IntersectOp:
		return algebra.Intersect(l, r)
	case DiffOp:
		return algebra.Diff(l, r)
	}
	return nil, fmt.Errorf("query: unknown set operator %d", s.Kind)
}

// Children implements Node.
func (s *SetOp) Children() []Node { return []Node{s.Left, s.Right} }

// String implements Node.
func (s *SetOp) String() string {
	return fmt.Sprintf("%s(%s, %s)", setOpNames[s.Kind], s.Left, s.Right)
}

// ---------------------------------------------------------------------------

// Assign is the assignment realization operator α (Table 3e). Exactly one
// of Src (attribute copy) or Const (constant) is used; Src takes precedence
// when non-empty.
type Assign struct {
	Child Node
	Attr  string
	Src   string
	Const value.Value
}

// NewAssignConst builds α_{attr := v}.
func NewAssignConst(child Node, attr string, v value.Value) *Assign {
	return &Assign{Child: child, Attr: attr, Const: v}
}

// NewAssignAttr builds α_{attr := src}.
func NewAssignAttr(child Node, attr, src string) *Assign {
	return &Assign{Child: child, Attr: attr, Src: src}
}

// ResultSchema implements Node.
func (a *Assign) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := a.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	return schema.AssignSchema(cs, a.Attr, a.Src)
}

// Eval implements Node.
func (a *Assign) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := a.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	if a.Src != "" {
		return algebra.AssignAttr(c, a.Attr, a.Src)
	}
	return algebra.AssignConst(c, a.Attr, a.Const)
}

// Children implements Node.
func (a *Assign) Children() []Node { return []Node{a.Child} }

// String implements Node.
func (a *Assign) String() string {
	if a.Src != "" {
		return fmt.Sprintf("assign[%s := %s](%s)", a.Attr, a.Src, a.Child)
	}
	return fmt.Sprintf("assign[%s := %s](%s)", a.Attr, a.Const, a.Child)
}

// ---------------------------------------------------------------------------

// Invoke is the invocation realization operator β_bp (Table 3f). The
// binding pattern is resolved against the child's schema at planning time by
// prototype name and optional service attribute.
type Invoke struct {
	Child       Node
	Proto       string
	ServiceAttr string // optional disambiguation
}

// NewInvoke builds β over the named prototype's binding pattern.
func NewInvoke(child Node, proto, serviceAttr string) *Invoke {
	return &Invoke{Child: child, Proto: proto, ServiceAttr: serviceAttr}
}

// resolveBP finds the binding pattern in the child schema.
func (i *Invoke) resolveBP(cs *schema.Extended) (schema.BindingPattern, error) {
	return cs.FindBP(i.Proto, i.ServiceAttr)
}

// ResultSchema implements Node.
func (i *Invoke) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := i.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	bp, err := i.resolveBP(cs)
	if err != nil {
		return nil, err
	}
	return schema.InvokeSchema(cs, bp)
}

// Eval implements Node.
func (i *Invoke) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := i.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	bp, err := i.resolveBP(c.Schema())
	if err != nil {
		return nil, err
	}
	return algebra.Invoke(c, bp, ctx)
}

// Children implements Node.
func (i *Invoke) Children() []Node { return []Node{i.Child} }

// String implements Node.
func (i *Invoke) String() string {
	if i.ServiceAttr != "" {
		return fmt.Sprintf("invoke[%s@%s](%s)", i.Proto, i.ServiceAttr, i.Child)
	}
	return fmt.Sprintf("invoke[%s](%s)", i.Proto, i.Child)
}

// ---------------------------------------------------------------------------

// Window is W[period] (Section 4.2): over an XD-Relation it yields, at every
// instant, the multiset of tuples inserted during the last `period`
// instants. It is only evaluable by the continuous executor.
type Window struct {
	Child  Node
	Period int64
}

// NewWindow builds a window node.
func NewWindow(child Node, period int64) *Window { return &Window{child, period} }

// ResultSchema implements Node.
func (w *Window) ResultSchema(env Environment) (*schema.Extended, error) {
	return w.Child.ResultSchema(env)
}

// Eval implements Node. One-shot evaluation rejects windows.
func (w *Window) Eval(ctx *Context) (*algebra.XRelation, error) {
	if ctx.Continuous == nil {
		return nil, fmt.Errorf("query: window[%d] requires a continuous execution context (Section 4)", w.Period)
	}
	return ctx.Continuous.EvalWindow(w, ctx)
}

// Children implements Node.
func (w *Window) Children() []Node { return []Node{w.Child} }

// String implements Node.
func (w *Window) String() string { return fmt.Sprintf("window[%d](%s)", w.Period, w.Child) }

// ---------------------------------------------------------------------------

// StreamKind selects the streaming operator variant (Section 4.2).
type StreamKind uint8

// The three streaming variants of S[type].
const (
	StreamInsertion StreamKind = iota
	StreamDeletion
	StreamHeartbeat
)

var streamKindNames = map[StreamKind]string{
	StreamInsertion: "insertion", StreamDeletion: "deletion", StreamHeartbeat: "heartbeat",
}

// StreamKindFromString parses a streaming variant name.
func StreamKindFromString(s string) (StreamKind, bool) {
	for k, n := range streamKindNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// String returns the variant name.
func (k StreamKind) String() string { return streamKindNames[k] }

// Stream is S[type] (Section 4.2): it turns a finite XD-Relation into an
// infinite one by emitting, at each instant, the tuples inserted/deleted/
// present at that instant. Only the continuous executor evaluates it.
type Stream struct {
	Child Node
	Kind  StreamKind
}

// NewStream builds a streaming node.
func NewStream(child Node, kind StreamKind) *Stream { return &Stream{child, kind} }

// ResultSchema implements Node.
func (s *Stream) ResultSchema(env Environment) (*schema.Extended, error) {
	return s.Child.ResultSchema(env)
}

// Eval implements Node. One-shot evaluation rejects streaming.
func (s *Stream) Eval(ctx *Context) (*algebra.XRelation, error) {
	if ctx.Continuous == nil {
		return nil, fmt.Errorf("query: stream[%s] requires a continuous execution context (Section 4)", s.Kind)
	}
	return ctx.Continuous.EvalStream(s, ctx)
}

// Children implements Node.
func (s *Stream) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *Stream) String() string { return fmt.Sprintf("stream[%s](%s)", s.Kind, s.Child) }

// ---------------------------------------------------------------------------

// Walk visits the tree depth-first, parents before children.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// HasActiveInvoke reports whether the subtree contains an invocation of an
// active prototype — the property that blocks reordering rewrites
// (Section 3.3). Resolution is static: it needs the environment to resolve
// base schemas.
func HasActiveInvoke(n Node, env Environment) (bool, error) {
	switch t := n.(type) {
	case *Invoke:
		cs, err := t.Child.ResultSchema(env)
		if err != nil {
			return false, err
		}
		bp, err := t.resolveBP(cs)
		if err != nil {
			return false, err
		}
		if bp.Active() {
			return true, nil
		}
	}
	for _, c := range n.Children() {
		has, err := HasActiveInvoke(c, env)
		if err != nil || has {
			return has, err
		}
	}
	return false, nil
}
