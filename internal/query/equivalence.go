package query

import (
	"fmt"

	"serena/internal/algebra"
	"serena/internal/service"
	"serena/internal/trace"
)

// Result bundles one evaluation's output: the resulting X-Relation, the
// action set triggered against the environment, and invocation statistics.
type Result struct {
	Relation *algebra.XRelation
	Actions  *ActionSet
	Stats    InvokeStats
}

// Evaluate runs a one-shot query at the given instant (Definition 7 / the
// evaluation model of Section 3.2: all invocations conceptually occur at
// instant τ; passive invocations are memoized within the instant).
func Evaluate(q Node, env Environment, reg *service.Registry, at service.Instant) (*Result, error) {
	return EvaluateCtx(q, NewContext(env, reg, at))
}

// EvaluateCtx runs a one-shot query with a caller-prepared context (custom
// error policy, invocation parallelism, disabled memo, …). When the caller
// did not install a span, the head-sampling decision is made here: a sampled
// one-shot evaluation gets a "query.eval" root so its β invocations appear
// in the trace ring alongside continuous-query ticks.
func EvaluateCtx(q Node, ctx *Context) (*Result, error) {
	if ctx.Span == nil && trace.Default.Active() {
		if root := trace.Default.StartRoot("query.eval"); root != nil {
			root.SetAttrInt("instant", int64(ctx.At))
			ctx.Span = root
			defer root.Finish()
		}
	}
	rel, err := q.Eval(ctx)
	ctx.PublishObsStats()
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Actions: ctx.Actions, Stats: ctx.Stats}, nil
}

// Verdict reports the outcome of an equivalence check between two queries.
type Verdict struct {
	Equivalent  bool
	SameResult  bool
	SameActions bool
	Reason      string
}

// CheckEquivalence tests q1 ≡ q2 over a concrete environment at one instant
// (Definition 9): both queries must produce the same resulting X-Relation
// AND the same action set. Note that Definition 9 quantifies over all
// environments; this check refutes equivalence or confirms it for the given
// p and τ — the standard testing-side approximation, used to validate the
// rewrite rules of Table 5 against randomized environments.
//
// Both queries are actually executed, so active invocations DO fire twice;
// run equivalence checks against simulated services only.
func CheckEquivalence(q1, q2 Node, env Environment, reg *service.Registry, at service.Instant) (Verdict, error) {
	r1, err := Evaluate(q1, env, reg, at)
	if err != nil {
		return Verdict{}, fmt.Errorf("query: evaluating q1: %w", err)
	}
	r2, err := Evaluate(q2, env, reg, at)
	if err != nil {
		return Verdict{}, fmt.Errorf("query: evaluating q2: %w", err)
	}
	v := Verdict{
		SameResult:  r1.Relation.Schema().Equal(r2.Relation.Schema()) && r1.Relation.EqualContents(r2.Relation),
		SameActions: r1.Actions.Equal(r2.Actions),
	}
	v.Equivalent = v.SameResult && v.SameActions
	switch {
	case v.Equivalent:
		v.Reason = "same result and same action set"
	case !v.SameResult && !v.SameActions:
		v.Reason = "results and action sets differ"
	case !v.SameResult:
		v.Reason = "results differ"
	default:
		v.Reason = fmt.Sprintf("action sets differ: %s vs %s", r1.Actions, r2.Actions)
	}
	return v, nil
}
