package query_test

import (
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/value"
)

// paperSetup returns the scenario environment, registry and devices.
func paperSetup() (query.MapEnv, *service.Registry, *paperenv.Devices) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{
		"contacts":     paperenv.Contacts(),
		"cameras":      paperenv.Cameras(),
		"sensors":      paperenv.Sensors(),
		"surveillance": paperenv.Surveillance(),
	}
	return env, reg, dev
}

// q1 builds Q1 of Table 4:
// β_sendMessage(α_text:="Bonjour!"(σ_name≠"Carla"(contacts))).
func q1() query.Node {
	return query.NewInvoke(
		query.NewAssignConst(
			query.NewSelect(query.NewBase("contacts"),
				algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla")))),
			"text", value.NewString("Bonjour!")),
		"sendMessage", "")
}

// q1p builds Q1' of Table 4: the selection pulled above the invocation —
// same result, different action set.
func q1p() query.Node {
	return query.NewSelect(
		query.NewInvoke(
			query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Bonjour!")),
			"sendMessage", ""),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla"))))
}

// q2 builds Q2 of Table 4:
// π_photo(β_takePhoto(σ_quality≥5(β_checkPhoto(σ_area="office"(cameras))))).
func q2() query.Node {
	return query.NewProject(
		query.NewInvoke(
			query.NewSelect(
				query.NewInvoke(
					query.NewSelect(query.NewBase("cameras"),
						algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office")))),
					"checkPhoto", ""),
				algebra.Compare(algebra.Attr("quality"), algebra.Ge, algebra.Const(value.NewInt(5)))),
			"takePhoto", ""),
		"photo")
}

// q2p builds Q2' of Table 4: the area selection evaluated after checkPhoto —
// equivalent to Q2 because both invocations are passive (Example 7).
func q2p() query.Node {
	return query.NewProject(
		query.NewInvoke(
			query.NewSelect(
				query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
				algebra.NewAnd(
					algebra.Compare(algebra.Attr("quality"), algebra.Ge, algebra.Const(value.NewInt(5))),
					algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office"))))),
			"takePhoto", ""),
		"photo")
}

func TestQ1SendsToAllButCarla(t *testing.T) {
	env, reg, dev := paperSetup()
	res, err := query.Evaluate(q1(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("Q1 result Len = %d, want 2", res.Relation.Len())
	}
	sch := res.Relation.Schema()
	if !sch.IsReal("sent") || !sch.IsReal("text") {
		t.Fatal("Q1 must realize text and sent")
	}
	si := sch.RealIndex("sent")
	for _, tu := range res.Relation.Tuples() {
		if !tu[si].Bool() {
			t.Fatalf("message not sent: %v", tu)
		}
	}
	// Physical side effects: email got Nicolas, jabber got Francois, nobody
	// messaged Carla.
	emails := dev.Messengers["email"].Outbox()
	jabbers := dev.Messengers["jabber"].Outbox()
	if len(emails) != 1 || emails[0].Address != "nicolas@elysee.fr" || emails[0].Text != "Bonjour!" {
		t.Fatalf("email outbox = %v", emails)
	}
	if len(jabbers) != 1 || jabbers[0].Address != "francois@im.gouv.fr" {
		t.Fatalf("jabber outbox = %v", jabbers)
	}
}

func TestExample6ActionSets(t *testing.T) {
	env, reg, _ := paperSetup()
	r1, err := query.Evaluate(q1(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1p, err := query.Evaluate(q1p(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Actions_p(Q1) per Example 6.
	bonjour := func(addr string) value.Tuple {
		return value.Tuple{value.NewString(addr), value.NewString("Bonjour!")}
	}
	wantQ1 := query.NewActionSet()
	wantQ1.Add(query.Action{BP: "sendMessage[messenger]", Ref: "email", Input: bonjour("nicolas@elysee.fr")})
	wantQ1.Add(query.Action{BP: "sendMessage[messenger]", Ref: "jabber", Input: bonjour("francois@im.gouv.fr")})
	if !r1.Actions.Equal(wantQ1) {
		t.Fatalf("Actions(Q1) = %s\nwant %s", r1.Actions, wantQ1)
	}
	// Actions_p(Q1') additionally messages Carla.
	wantQ1p := query.NewActionSet()
	for _, a := range wantQ1.Sorted() {
		wantQ1p.Add(a)
	}
	wantQ1p.Add(query.Action{BP: "sendMessage[messenger]", Ref: "email", Input: bonjour("carla@elysee.fr")})
	if !r1p.Actions.Equal(wantQ1p) {
		t.Fatalf("Actions(Q1') = %s\nwant %s", r1p.Actions, wantQ1p)
	}
}

func TestExample7Equivalence(t *testing.T) {
	env, reg, _ := paperSetup()
	// Q1 ≢ Q1': same result, different action sets.
	v, err := query.CheckEquivalence(q1(), q1p(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("Q1 and Q1' must NOT be equivalent (Example 7)")
	}
	if !v.SameResult {
		t.Fatal("Q1 and Q1' should produce the same resulting X-Relation")
	}
	if v.SameActions {
		t.Fatal("Q1 and Q1' action sets must differ")
	}
	if !strings.Contains(v.Reason, "action sets differ") {
		t.Fatalf("Reason = %q", v.Reason)
	}
	// Q2 ≡ Q2': passive prototypes, empty action sets.
	v2, err := query.CheckEquivalence(q2(), q2p(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Equivalent {
		t.Fatalf("Q2 and Q2' must be equivalent (Example 7): %s", v2.Reason)
	}
	r2, _ := query.Evaluate(q2(), env, reg, 0)
	if r2.Actions.Len() != 0 {
		t.Fatalf("Q2 action set must be empty, got %s", r2.Actions)
	}
}

func TestQ2TakesOfficePhotos(t *testing.T) {
	env, reg, dev := paperSetup()
	res, err := query.Evaluate(q2(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// camera02 covers the office with native quality 7 (±2 by lighting) —
	// at instant 0 the assess() is deterministic; quality ≥ 5 holds.
	if res.Relation.Len() != 1 {
		t.Fatalf("Q2 Len = %d, want 1 office photo", res.Relation.Len())
	}
	if got := res.Relation.Schema().Names(); len(got) != 1 || got[0] != "photo" {
		t.Fatalf("Q2 schema = %v", got)
	}
	if dev.Cameras["camera02"].Shots() != 1 {
		t.Fatal("camera02 should have taken exactly one photo")
	}
	if dev.Cameras["camera01"].Shots() != 0 || dev.Cameras["webcam07"].Shots() != 0 {
		t.Fatal("only the office camera should shoot under Q2")
	}
}

func TestQ2PrimeInvokesMoreButSameResult(t *testing.T) {
	env, reg, _ := paperSetup()
	r2, err := query.Evaluate(q2(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2p, err := query.Evaluate(q2p(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Relation.EqualContents(r2p.Relation) {
		t.Fatal("Q2 and Q2' results differ")
	}
	// The pushed-down Q2 performs strictly fewer passive invocations — the
	// whole point of the Table 5 rewrites.
	if r2.Stats.Passive >= r2p.Stats.Passive {
		t.Fatalf("Q2 passive invocations (%d) should be < Q2' (%d)",
			r2.Stats.Passive, r2p.Stats.Passive)
	}
}

func TestSensorQueryWithMeanPattern(t *testing.T) {
	// "Retrieve temperatures for a given location" (Section 1.2).
	env, reg, _ := paperSetup()
	q := query.NewInvoke(
		query.NewSelect(query.NewBase("sensors"),
			algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString("office")))),
		"getTemperature", "")
	res, err := query.Evaluate(q, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 { // sensor06, sensor07
		t.Fatalf("Len = %d, want 2", res.Relation.Len())
	}
	ti := res.Relation.Schema().RealIndex("temperature")
	for _, tu := range res.Relation.Tuples() {
		if tu[ti].Real() < 15 || tu[ti].Real() > 30 {
			t.Fatalf("implausible temperature %v", tu[ti])
		}
	}
	if res.Actions.Len() != 0 {
		t.Fatal("passive query must have an empty action set")
	}
}

func TestMemoizationWithinInstant(t *testing.T) {
	// Two rows referencing the same sensor: the passive invocation is
	// memoized within the instant (deterministic services, Section 3.2).
	reg, dev := paperenv.MustRegistry()
	dup := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewService("sensor01"), value.NewString("corridor")},
		{value.NewService("sensor01"), value.NewString("hall")},
	})
	env := query.MapEnv{"sensors": dup}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	res, err := query.Evaluate(q, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("Len = %d", res.Relation.Len())
	}
	if res.Stats.Passive != 1 || res.Stats.Memoized != 1 {
		t.Fatalf("stats = %+v, want 1 physical + 1 memoized", res.Stats)
	}
	if dev.Sensors["sensor01"].Invocations() != 1 {
		t.Fatal("sensor should be physically invoked once")
	}
}

func TestMemoizationDisabled(t *testing.T) {
	reg, dev := paperenv.MustRegistry()
	dup := algebra.MustNew(paperenv.SensorsSchema(), []value.Tuple{
		{value.NewService("sensor01"), value.NewString("corridor")},
		{value.NewService("sensor01"), value.NewString("hall")},
	})
	ctx := query.NewContext(query.MapEnv{"sensors": dup}, reg, 0)
	ctx.Memo = nil // ablation
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	if _, err := q.Eval(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.Passive != 2 || ctx.Stats.Memoized != 0 {
		t.Fatalf("stats = %+v, want 2 physical", ctx.Stats)
	}
	if dev.Sensors["sensor01"].Invocations() != 2 {
		t.Fatal("sensor should be invoked twice without memo")
	}
}

func TestActiveInvocationsAreNeverMemoized(t *testing.T) {
	env, reg, dev := paperSetup()
	// Two different contacts share the email service but have different
	// addresses → two actions; sending twice to the SAME address via two
	// query branches would still fire twice physically.
	dup := query.NewUnion(q1(), q1())
	// q1 ∪ q1 has identical subtrees; evaluation runs both.
	if _, err := query.Evaluate(dup, env, reg, 0); err != nil {
		t.Fatal(err)
	}
	// 2 tuples × 2 branches = 4 physical sends (2 to each address).
	total := len(dev.Messengers["email"].Outbox()) + len(dev.Messengers["jabber"].Outbox())
	if total != 4 {
		t.Fatalf("active invocations = %d, want 4 (never memoized)", total)
	}
}

func TestResultSchemaMatchesEvalSchema(t *testing.T) {
	env, reg, _ := paperSetup()
	for _, q := range []query.Node{q1(), q1p(), q2(), q2p()} {
		want, err := q.ResultSchema(env)
		if err != nil {
			t.Fatalf("%s: ResultSchema: %v", q, err)
		}
		res, err := query.Evaluate(q, env, reg, 0)
		if err != nil {
			t.Fatalf("%s: Eval: %v", q, err)
		}
		if !res.Relation.Schema().Equal(want) {
			t.Fatalf("%s: planned schema %v differs from evaluated schema %v",
				q, want.Names(), res.Relation.Schema().Names())
		}
	}
}

func TestSetOpNodes(t *testing.T) {
	env, reg, _ := paperSetup()
	carla := query.NewSelect(query.NewBase("contacts"),
		algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("Carla"))))
	others := query.NewSelect(query.NewBase("contacts"),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla"))))
	u, err := query.Evaluate(query.NewUnion(carla, others), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Relation.Len() != 3 {
		t.Fatalf("union Len = %d", u.Relation.Len())
	}
	i, err := query.Evaluate(query.NewIntersect(carla, others), env, reg, 0)
	if err != nil || i.Relation.Len() != 0 {
		t.Fatalf("intersect Len = %d, err %v", i.Relation.Len(), err)
	}
	d, err := query.Evaluate(query.NewDiff(query.NewBase("contacts"), carla), env, reg, 0)
	if err != nil || d.Relation.Len() != 2 {
		t.Fatalf("diff Len = %d, err %v", d.Relation.Len(), err)
	}
	// Schema mismatch detection at planning time.
	bad := query.NewUnion(query.NewBase("contacts"), query.NewBase("cameras"))
	if _, err := bad.ResultSchema(env); err == nil {
		t.Fatal("union of different schemas accepted")
	}
}

func TestWindowStreamRejectedInOneShot(t *testing.T) {
	env, reg, _ := paperSetup()
	w := query.NewWindow(query.NewBase("sensors"), 1)
	if _, err := query.Evaluate(w, env, reg, 0); err == nil {
		t.Fatal("window must be rejected in one-shot evaluation")
	}
	s := query.NewStream(query.NewBase("sensors"), query.StreamInsertion)
	if _, err := query.Evaluate(s, env, reg, 0); err == nil {
		t.Fatal("stream must be rejected in one-shot evaluation")
	}
}

func TestHasActiveInvoke(t *testing.T) {
	env, _, _ := paperSetup()
	has, err := query.HasActiveInvoke(q1(), env)
	if err != nil || !has {
		t.Fatalf("Q1 contains an active invoke: %v %v", has, err)
	}
	has, err = query.HasActiveInvoke(q2(), env)
	if err != nil || has {
		t.Fatalf("Q2 is all-passive: %v %v", has, err)
	}
}

func TestStringRendering(t *testing.T) {
	s := q1().String()
	want := `invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"](contacts)))`
	if s != want {
		t.Fatalf("Q1 SAL = %q\nwant     %q", s, want)
	}
	w := query.NewStream(query.NewWindow(query.NewBase("temperatures"), 1), query.StreamInsertion)
	if w.String() != "stream[insertion](window[1](temperatures))" {
		t.Fatalf("continuous SAL = %q", w.String())
	}
	iq := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "sensor")
	if iq.String() != "invoke[getTemperature@sensor](sensors)" {
		t.Fatalf("qualified invoke SAL = %q", iq.String())
	}
	r := query.NewRename(query.NewBase("t"), "location", "area")
	if r.String() != "rename[location -> area](t)" {
		t.Fatalf("rename SAL = %q", r.String())
	}
	a := query.NewAssignAttr(query.NewBase("c"), "text", "address")
	if a.String() != "assign[text := address](c)" {
		t.Fatalf("assign-attr SAL = %q", a.String())
	}
}

func TestWalk(t *testing.T) {
	var kinds []string
	query.Walk(q1(), func(n query.Node) {
		switch n.(type) {
		case *query.Invoke:
			kinds = append(kinds, "invoke")
		case *query.Assign:
			kinds = append(kinds, "assign")
		case *query.Select:
			kinds = append(kinds, "select")
		case *query.Base:
			kinds = append(kinds, "base")
		}
	})
	if strings.Join(kinds, ",") != "invoke,assign,select,base" {
		t.Fatalf("Walk order = %v", kinds)
	}
}

func TestUnknownBaseRelation(t *testing.T) {
	env, reg, _ := paperSetup()
	if _, err := query.Evaluate(query.NewBase("ghost"), env, reg, 0); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := query.NewBase("ghost").ResultSchema(env); err == nil {
		t.Fatal("unknown relation accepted by ResultSchema")
	}
}

func TestActionSetBasics(t *testing.T) {
	s := query.NewActionSet()
	a := query.Action{BP: "p[x]", Ref: "svc", Input: value.Tuple{value.NewInt(1)}}
	s.Add(a)
	s.Add(a) // idempotent
	if s.Len() != 1 || !s.Contains(a) {
		t.Fatal("ActionSet set semantics broken")
	}
	if got := s.String(); got != "{(p[x], svc, (1))}" {
		t.Fatalf("String = %q", got)
	}
	o := query.NewActionSet()
	if s.Equal(o) {
		t.Fatal("unequal sets reported equal")
	}
	o.Add(query.Action{BP: "p[x]", Ref: "svc2", Input: value.Tuple{value.NewInt(1)}})
	if s.Equal(o) {
		t.Fatal("sets with same size but different members reported equal")
	}
}
