package query_test

import (
	"strings"
	"testing"

	"serena/internal/query"
)

func TestInstrumentPreservesSemantics(t *testing.T) {
	env, reg, _ := paperSetup()
	plain, err := query.Evaluate(q2(), env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := query.Instrument(q2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(traced, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.EqualContents(plain.Relation) {
		t.Fatal("traced evaluation changed the result")
	}
	if !res.Actions.Equal(plain.Actions) {
		t.Fatal("traced evaluation changed the action set")
	}
}

func TestTracedRecordsCardinalities(t *testing.T) {
	env, reg, _ := paperSetup()
	traced, err := query.Instrument(q2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(traced, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Calls() != 1 {
		t.Fatalf("root calls = %d, want 1", traced.Calls())
	}
	if got := traced.RowsOut(); got != int64(res.Relation.Len()) {
		t.Fatalf("root rows_out = %d, want %d", got, res.Relation.Len())
	}
	// The root's input cardinality is its child's output cardinality.
	kids := traced.Children()
	if len(kids) != 1 {
		t.Fatalf("project arity = %d", len(kids))
	}
	child := kids[0].(*query.Traced)
	if traced.RowsIn() != child.RowsOut() {
		t.Fatalf("rows_in %d != child rows_out %d", traced.RowsIn(), child.RowsOut())
	}
	if traced.Wall() < child.Wall() {
		t.Fatalf("parent wall %s < child wall %s", traced.Wall(), child.Wall())
	}
	if traced.Self() > traced.Wall() {
		t.Fatalf("self %s > wall %s", traced.Self(), traced.Wall())
	}
}

func TestTracedRender(t *testing.T) {
	env, reg, _ := paperSetup()
	traced, err := query.Instrument(q2())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Evaluate(traced, env, reg, 0); err != nil {
		t.Fatal(err)
	}
	out := traced.Render()
	for _, want := range []string{
		"project[photo]",
		"invoke[takePhoto]",
		"invoke[checkPhoto]",
		"cameras",
		"calls=1",
		"rows_out=",
		"time=",
		"self=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// The leaf renders deepest: indentation reflects the tree.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("Render produced %d lines, want 6 (one per operator):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "project[photo]") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.Contains(lines[5], "  cameras") {
		t.Fatalf("leaf line = %q", lines[5])
	}
}

func TestInstrumentActiveQuery(t *testing.T) {
	env, reg, dev := paperSetup()
	traced, err := query.Instrument(q1())
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(traced, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions.Len() != 2 {
		t.Fatalf("Q1 action set Len = %d, want 2", res.Actions.Len())
	}
	sent := 0
	for _, m := range dev.Messengers {
		sent += len(m.Outbox())
	}
	if sent != 2 {
		t.Fatalf("messages sent = %d, want 2", sent)
	}
}
