package query_test

import (
	"sync"
	"testing"

	"serena/internal/device"
	"serena/internal/obs"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/value"
)

// TestMetricsConcurrentExactness hammers ONE instrumented query.Context
// from MaxParallel goroutines — the way the invocation operator fans out
// under .parallel — and asserts the counters are exact, not approximate:
// every operation lands in exactly one bucket and no increment is lost.
// Run with -race (the CI gate does).
func TestMetricsConcurrentExactness(t *testing.T) {
	env, reg, _ := paperSetup()

	sensorBP := schema.BindingPattern{Proto: device.GetTemperatureProto(), ServiceAttr: "sensor"}
	messageBP := schema.BindingPattern{Proto: device.SendMessageProto(), ServiceAttr: "messenger"}
	refs := []string{"sensor01", "sensor06", "sensor07", "sensor22"}

	ctx := query.NewContext(env, reg, 3)
	ctx.Parallelism = 8

	const perWorker = 250
	workers := ctx.MaxParallel()

	// Deltas, not absolute values: other tests in the package share the
	// process-wide registry.
	passiveBefore := obs.Default.Counter("query.invoke.passive").Value()
	memoBefore := obs.Default.Counter("query.invoke.memoized").Value()
	activeBefore := obs.Default.Counter("query.invoke.active").Value()
	callsBefore := obs.Default.Counter("service.invoke.calls").Value()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ref := refs[(w+i)%len(refs)]
				if _, err := ctx.InvokeTracked(sensorBP, ref, nil, nil); err != nil {
					t.Errorf("worker %d: passive invoke: %v", w, err)
					return
				}
				if i%50 == 0 { // a sprinkle of active invocations
					in := value.Tuple{value.NewString("x@example.org"), value.NewString("hi")}
					if _, err := ctx.InvokeTracked(messageBP, "email", in, nil); err != nil {
						t.Errorf("worker %d: active invoke: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Query-level obs counters are batched per evaluation; flush the deltas
	// the way EvaluateCtx does after q.Eval.
	ctx.PublishObsStats()

	totalPassiveOps := int64(workers * perWorker)
	totalActiveOps := int64(workers * (perWorker / 50))

	// Context-local stats: every passive op is counted exactly once, as
	// either a physical invocation or a memo hit.
	if got := ctx.Stats.Passive + ctx.Stats.Memoized; got != totalPassiveOps {
		t.Fatalf("passive+memoized = %d (%d+%d), want %d",
			got, ctx.Stats.Passive, ctx.Stats.Memoized, totalPassiveOps)
	}
	if ctx.Stats.Active != totalActiveOps {
		t.Fatalf("active = %d, want %d", ctx.Stats.Active, totalActiveOps)
	}

	// Process-wide obs counters must agree with the context-local ones.
	passiveDelta := obs.Default.Counter("query.invoke.passive").Value() - passiveBefore
	memoDelta := obs.Default.Counter("query.invoke.memoized").Value() - memoBefore
	activeDelta := obs.Default.Counter("query.invoke.active").Value() - activeBefore
	callsDelta := obs.Default.Counter("service.invoke.calls").Value() - callsBefore

	if passiveDelta != ctx.Stats.Passive {
		t.Fatalf("obs passive = %d, context counted %d", passiveDelta, ctx.Stats.Passive)
	}
	if memoDelta != ctx.Stats.Memoized {
		t.Fatalf("obs memoized = %d, context counted %d", memoDelta, ctx.Stats.Memoized)
	}
	if activeDelta != ctx.Stats.Active {
		t.Fatalf("obs active = %d, context counted %d", activeDelta, ctx.Stats.Active)
	}
	// Physical service calls = passive misses + active invocations (memo
	// hits never reach the registry).
	if want := passiveDelta + activeDelta; callsDelta != want {
		t.Fatalf("service.invoke.calls delta = %d, want %d (passive %d + active %d)",
			callsDelta, want, passiveDelta, activeDelta)
	}

	// The action set is a SET: the same (bp, ref, input) hammered from every
	// worker collapses to one action (Definition 8).
	if ctx.Actions.Len() != 1 {
		t.Fatalf("action set Len = %d, want 1", ctx.Actions.Len())
	}
}
