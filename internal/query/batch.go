package query

import (
	"sync"

	"serena/internal/algebra"
	"serena/internal/obs"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
)

// Batch-planner metrics: plans built, β jobs entering them, duplicate jobs
// folded before dispatch, and physical registry dispatches (one per
// (ref, chunk) — for remote services, one wire frame each).
var (
	obsPlanCalls      = obs.Default.Counter("query.batch.plans")
	obsPlanJobs       = obs.Default.Counter("query.batch.jobs")
	obsPlanDeduped    = obs.Default.Counter("query.batch.deduped")
	obsPlanDispatches = obs.Default.Counter("query.batch.dispatches")
)

// DefaultBatchSize is the dispatch chunk bound used when Context.BatchSize
// is zero. Large enough to amortize a wire round trip, small enough that a
// frame stays cheap to encode and one slow item does not stall hundreds.
const DefaultBatchSize = 64

// MaxBatch implements algebra.BatchInvoker: the largest group the planner
// wants in one dispatch. Values < 2 make the algebra keep the per-tuple
// path. The default (BatchSize 0) consults the registry: batching exists
// to amortize transport round trips, so with no batch-capable service
// registered (a pure-local environment) the planner would be pure
// overhead and the per-tuple path stays. An explicit positive BatchSize
// forces the planner on regardless.
func (c *Context) MaxBatch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	if c.BatchSize < 0 {
		return 1
	}
	if c.Registry != nil && !c.Registry.HasBatchTransport() {
		return 1
	}
	return DefaultBatchSize
}

// batchCall is one unique (ref, input) pair of a batch plan, carrying the
// original job indexes that folded into it and, once resolved, its shared
// outcome.
type batchCall struct {
	ref    string
	input  value.Tuple
	idxs   []int // original job indexes sharing this call
	flight *service.Flight
	status service.BeginStatus
	rows   []value.Tuple
	err    error
}

// InvokeBatch implements algebra.BatchInvoker for passive β fan-out.
func (c *Context) InvokeBatch(bp schema.BindingPattern, refs []string, inputs []value.Tuple) []algebra.BatchResult {
	return c.InvokeBatchTracked(bp, refs, inputs, nil)
}

// InvokeBatchTracked plans and dispatches a passive β fan-out as batches:
// identical (proto, ref, input) jobs are folded into one call, folded calls
// join the per-instant memo's in-flight coalescing (so concurrent workers
// and other operators share the same physical call), and the remaining
// unique misses are grouped by service ref and dispatched through
// Registry.InvokeBatchCtx in MaxBatch-bounded chunks — one wire frame per
// chunk for remote services. Results are positional; per-item failures go
// through the same degradation policy as the per-tuple path, and skipped
// (if non-nil, len(refs)) marks absorbed failures exactly like
// InvokeTracked's skipped out-param does.
//
// Active binding patterns must NOT come here: each active occurrence is a
// distinct Def. 8 action and must fire per tuple (the algebra gates on
// bp.Active() before choosing the batch path).
func (c *Context) InvokeBatchTracked(bp schema.BindingPattern, refs []string, inputs []value.Tuple, skipped []bool) []algebra.BatchResult {
	n := len(refs)
	out := make([]algebra.BatchResult, n)
	if n == 0 {
		return out
	}
	obsPlanCalls.Inc()
	obsPlanJobs.Add(int64(n))

	var span *trace.Span
	if c.Span != nil {
		span = c.Span.Child("invoke.batch")
		span.SetAttr("bp", bp.ID())
		span.SetAttrInt("jobs", int64(n))
	}

	proto := bp.Proto.Name

	// Fold identical jobs. With the memo disabled (ablation: every tuple
	// re-invokes) duplicates are kept as separate calls to preserve those
	// semantics.
	calls := make([]*batchCall, 0, n)
	if c.Memo != nil {
		unique := make(map[string]*batchCall, n)
		for i := 0; i < n; i++ {
			k := refs[i] + "|" + inputs[i].Key()
			bc := unique[k]
			if bc == nil {
				bc = &batchCall{ref: refs[i], input: inputs[i]}
				unique[k] = bc
				calls = append(calls, bc)
			} else {
				obsPlanDeduped.Inc()
			}
			bc.idxs = append(bc.idxs, i)
		}
		// Register every unique call with the memo: hits resolve now,
		// shared flights are awaited after our own dispatches complete
		// (their owners run elsewhere), owners go to the dispatch stage.
		for _, bc := range calls {
			bc.rows, bc.flight, bc.status = c.Memo.Begin(proto, bc.ref, bc.input)
		}
	} else {
		for i := 0; i < n; i++ {
			bc := &batchCall{ref: refs[i], input: inputs[i], status: service.BeginOwner}
			bc.idxs = []int{i}
			calls = append(calls, bc)
		}
	}

	// Group owned misses by service ref, preserving first-appearance order
	// for deterministic dispatch.
	groupOf := make(map[string][]*batchCall)
	var groupOrder []string
	owned := 0
	for _, bc := range calls {
		if bc.status != service.BeginOwner {
			continue
		}
		owned++
		if _, ok := groupOf[bc.ref]; !ok {
			groupOrder = append(groupOrder, bc.ref)
		}
		groupOf[bc.ref] = append(groupOf[bc.ref], bc)
	}

	// Dispatch each (ref, chunk) through the registry's batch entry point.
	// Groups for different refs run concurrently up to Parallelism; chunks
	// within a ref stay sequential (one frame at a time per service).
	maxB := c.MaxBatch()
	if maxB < 1 {
		maxB = 1
	}
	ctx := trace.ContextWith(c.ctx(), span)
	dispatch := func(ref string, group []*batchCall) {
		if len(group) == 1 {
			// Single-call group: a one-item frame buys nothing, so keep the
			// plain per-item path (common for local fan-outs over distinct
			// services — the batch pipeline must not tax them).
			bc := group[0]
			obsPlanDispatches.Inc()
			bc.rows, bc.err = c.Registry.InvokeCtx(ctx, proto, bc.ref, bc.input, c.At)
			if bc.flight != nil {
				bc.flight.Complete(bc.rows, bc.err)
			}
			return
		}
		for start := 0; start < len(group); start += maxB {
			end := start + maxB
			if end > len(group) {
				end = len(group)
			}
			chunk := group[start:end]
			chunkInputs := make([]value.Tuple, len(chunk))
			for j, bc := range chunk {
				chunkInputs[j] = bc.input
			}
			obsPlanDispatches.Inc()
			results := c.Registry.InvokeBatchCtx(ctx, proto, ref, chunkInputs, c.At)
			for j, bc := range chunk {
				bc.rows, bc.err = results[j].Rows, results[j].Err
				if bc.flight != nil {
					bc.flight.Complete(bc.rows, bc.err)
				}
			}
		}
	}
	workers := c.Parallelism
	if workers > len(groupOrder) {
		workers = len(groupOrder)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan string)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ref := range next {
					dispatch(ref, groupOf[ref])
				}
			}()
		}
		for _, ref := range groupOrder {
			next <- ref
		}
		close(next)
		wg.Wait()
	} else {
		for _, ref := range groupOrder {
			dispatch(ref, groupOf[ref])
		}
	}

	// Resolve shared flights now that our own dispatches cannot deadlock
	// against them (their owners are other goroutines).
	for _, bc := range calls {
		if bc.status == service.BeginShared {
			bc.rows, bc.err = bc.flight.Wait()
		}
	}

	// Fan results back out to the original job order, counting stats the
	// way the sequential per-tuple path would have: the first job of a
	// folded call is the physical one, later jobs are memo hits.
	for _, bc := range calls {
		if bc.err != nil {
			for _, i := range bc.idxs {
				var sk *bool
				if skipped != nil {
					sk = &skipped[i]
				}
				var ts *trace.Span
				if span != nil {
					ts = span.Child(trace.SpanInvoke)
					ts.SetAttr("bp", bp.ID())
					ts.SetAttr("ref", bc.ref)
					ts.SetAttr("in", bc.input.String())
				}
				rows, err := c.invokeFailed(bp, bc.ref, bc.input, bc.err, sk, nil, ts)
				out[i] = algebra.BatchResult{Rows: rows, Err: err}
			}
			continue
		}
		for pos, i := range bc.idxs {
			out[i] = algebra.BatchResult{Rows: bc.rows}
			var mode string
			switch {
			case bc.status == service.BeginHit:
				c.bump(&c.Stats.Memoized)
				mode = "memoized"
			case bc.status == service.BeginShared:
				c.bump(&c.Stats.Coalesced)
				mode = "coalesced"
			case pos == 0:
				c.bump(&c.Stats.Passive)
				mode = "passive"
			default:
				c.bump(&c.Stats.Memoized)
				mode = "memoized"
			}
			// Per-tuple β spans survive batching: lineage still records one
			// "invoke" span per job, with the batch span as their parent.
			if span != nil {
				ts := span.Child(trace.SpanInvoke)
				ts.SetAttr("bp", bp.ID())
				ts.SetAttr("ref", bc.ref)
				ts.SetAttr("in", bc.input.String())
				ts.SetAttr("mode", mode)
				c.finishInvokeSpan(ts, bc.rows)
			}
		}
	}
	if span != nil {
		span.SetAttrInt("unique", int64(len(calls)))
		span.SetAttrInt("dispatched", int64(owned))
		span.Finish()
	}
	return out
}
