package query_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/value"
)

// countingEnv builds a sensors environment where the first dup of the n refs
// appears under TWO locations — two tuples, one β job each, but identical
// (proto, ref, input) pairs the planner must fold — and a registry whose
// services count physical invocations per ref.
func countingEnv(t *testing.T, n, dup int) (query.MapEnv, *service.Registry, map[string]*atomic.Int64) {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]*atomic.Int64, n)
	var rows []value.Tuple
	for i := 0; i < n; i++ {
		ref := fmt.Sprintf("s%03d", i)
		c := &atomic.Int64{}
		counts[ref] = c
		temp := float64(i)
		err := reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
			"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				c.Add(1)
				return []value.Tuple{{value.NewReal(temp)}}, nil
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, value.Tuple{value.NewService(ref), value.NewString("lab")})
		if i < dup {
			rows = append(rows, value.Tuple{value.NewService(ref), value.NewString("hall")})
		}
	}
	env := query.MapEnv{
		"sensors":  algebra.MustNew(paperenv.SensorsSchema(), rows),
		"contacts": paperenv.Contacts(),
	}
	return env, reg, counts
}

// registerCountingMessengers adds sendMessage services for the contacts
// fixture, counting deliveries per messenger ref.
func registerCountingMessengers(t *testing.T, reg *service.Registry, counts map[string]*atomic.Int64) {
	t.Helper()
	if err := reg.RegisterPrototype(device.SendMessageProto()); err != nil {
		t.Fatal(err)
	}
	for _, ref := range []string{"email", "jabber"} {
		c := &atomic.Int64{}
		counts[ref] = c
		err := reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
			"sendMessage": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				c.Add(1)
				return []value.Tuple{{value.NewBool(true)}}, nil
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchedParallelEquivalentToSequential is the Definition 9 property
// test: the batched, parallel pipeline must be EQUIVALENT to the sequential
// per-tuple one — same result relation AND same action set — and on top of
// that must reach each service the same number of times (the over-firing
// bug was invisible to result equality alone).
func TestBatchedParallelEquivalentToSequential(t *testing.T) {
	qPassive := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	qActive := query.NewInvoke(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")),
		"sendMessage", "")

	type run struct {
		passive, active *query.Result
		stats           query.InvokeStats
		counts          map[string]int64
	}
	eval := func(parallelism, batchSize int) run {
		env, reg, counts := countingEnv(t, 8, 4)
		registerCountingMessengers(t, reg, counts)
		ctx := query.NewContext(env, reg, 0)
		ctx.Parallelism = parallelism
		ctx.BatchSize = batchSize
		rp, err := query.EvaluateCtx(qPassive, ctx)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := query.EvaluateCtx(qActive, ctx)
		if err != nil {
			t.Fatal(err)
		}
		flat := make(map[string]int64, len(counts))
		for ref, c := range counts {
			flat[ref] = c.Load()
		}
		return run{passive: rp, active: ra, stats: ctx.Stats, counts: flat}
	}

	seq := eval(1, -1) // per-tuple, no batching, no parallelism
	par := eval(8, 4)  // batched (chunks of 4) on 8 workers

	if !seq.passive.Relation.EqualContents(par.passive.Relation) {
		t.Fatal("passive result differs between sequential and batched evaluation")
	}
	if !seq.active.Relation.EqualContents(par.active.Relation) {
		t.Fatal("active result differs between sequential and batched evaluation")
	}
	if !seq.active.Actions.Equal(par.active.Actions) {
		t.Fatalf("action sets differ (Def. 9):\n  seq %s\n  par %s", seq.active.Actions, par.active.Actions)
	}
	if seq.stats != par.stats {
		t.Fatalf("invocation stats differ:\n  seq %+v\n  par %+v", seq.stats, par.stats)
	}
	// 12 passive jobs fold to 8 physical calls; 3 active deliveries fire
	// per tuple in both pipelines.
	for ref, want := range seq.counts {
		if got := par.counts[ref]; got != want {
			t.Fatalf("service %s reached %d times batched, %d sequential", ref, got, want)
		}
		if want != 1 && ref != "email" {
			t.Fatalf("service %s reached %d times sequentially, want 1", ref, want)
		}
	}
	if seq.counts["email"] != 2 || seq.counts["jabber"] != 1 {
		t.Fatalf("deliveries = %d email / %d jabber, want 2/1", seq.counts["email"], seq.counts["jabber"])
	}
	if seq.stats.Active != 3 || seq.stats.Passive != 8 || seq.stats.Memoized != 4 {
		t.Fatalf("stats = %+v, want 3 active / 8 passive / 4 memoized", seq.stats)
	}
}

// TestBatchPlannerFoldsDuplicates drives InvokeBatchTracked directly:
// identical (ref, input) jobs share one physical call, results fan back out
// positionally, and stats count like the sequential memo path (first dup
// passive, later dups memoized).
func TestBatchPlannerFoldsDuplicates(t *testing.T) {
	env, reg, counts := countingEnv(t, 2, 0)
	ctx := query.NewContext(env, reg, 0)
	sensors := env["sensors"]
	bp, err := sensors.Schema().FindBP("getTemperature", "")
	if err != nil {
		t.Fatal(err)
	}
	refs := []string{"s000", "s001", "s000", "s000", "s001"}
	inputs := make([]value.Tuple, len(refs))
	for i := range inputs {
		inputs[i] = value.Tuple{}
	}
	out := ctx.InvokeBatchTracked(bp, refs, inputs, nil)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want := float64(0)
		if refs[i] == "s001" {
			want = 1
		}
		if len(r.Rows) != 1 || r.Rows[0][0].Real() != want {
			t.Fatalf("item %d (%s): rows = %v", i, refs[i], r.Rows)
		}
	}
	if counts["s000"].Load() != 1 || counts["s001"].Load() != 1 {
		t.Fatalf("physical calls = %d/%d, want 1/1 (duplicates not folded)",
			counts["s000"].Load(), counts["s001"].Load())
	}
	if ctx.Stats.Passive != 2 || ctx.Stats.Memoized != 3 {
		t.Fatalf("stats = %+v, want 2 passive / 3 memoized", ctx.Stats)
	}
}

// batchSizeRecorder is a BatchCtxService that records the size of every
// batch frame it receives.
type batchSizeRecorder struct {
	ref    string
	mu     sync.Mutex
	frames []int
}

func (b *batchSizeRecorder) Ref() string                  { return b.ref }
func (b *batchSizeRecorder) PrototypeNames() []string     { return []string{"getTemperature"} }
func (b *batchSizeRecorder) Implements(proto string) bool { return proto == "getTemperature" }

func (b *batchSizeRecorder) Invoke(proto string, in value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return []value.Tuple{{value.NewReal(1)}}, nil
}

func (b *batchSizeRecorder) InvokeBatchCtx(_ context.Context, proto string, inputs []value.Tuple, _ service.Instant) []service.InvokeResult {
	b.mu.Lock()
	b.frames = append(b.frames, len(inputs))
	b.mu.Unlock()
	out := make([]service.InvokeResult, len(inputs))
	for i := range out {
		out[i] = service.InvokeResult{Rows: []value.Tuple{{value.NewReal(1)}}}
	}
	return out
}

// TestBatchChunksAtMaxBatch: a group larger than BatchSize is dispatched in
// BatchSize-bounded frames, sequentially per service.
func TestBatchChunksAtMaxBatch(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	rec := &batchSizeRecorder{ref: "bulk"}
	if err := reg.Register(rec); err != nil {
		t.Fatal(err)
	}
	ctx := query.NewContext(query.MapEnv{}, reg, 0)
	ctx.BatchSize = 4
	ctx.Memo = nil // no folding: 10 distinct calls to one ref

	bp, err := paperenv.SensorsSchema().FindBP("getTemperature", "")
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 10
	refs := make([]string, jobs)
	inputs := make([]value.Tuple, jobs)
	for i := range refs {
		refs[i] = "bulk"
		inputs[i] = value.Tuple{}
	}
	out := ctx.InvokeBatchTracked(bp, refs, inputs, nil)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if want := []int{4, 4, 2}; len(rec.frames) != 3 || rec.frames[0] != want[0] || rec.frames[1] != want[1] || rec.frames[2] != want[2] {
		t.Fatalf("frames = %v, want %v", rec.frames, want)
	}
}

// TestBatchDegradationPerItem: per-item failures inside a batch go through
// the same degradation policies as the per-tuple path, and the skipped[]
// out-param marks absorbed failures so the delta cache won't remember them.
func TestBatchDegradationPerItem(t *testing.T) {
	build := func() (*query.Context, map[string]*atomic.Int64) {
		reg := service.NewRegistry()
		if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
			t.Fatal(err)
		}
		counts := map[string]*atomic.Int64{}
		for i := 0; i < 4; i++ {
			ref := fmt.Sprintf("s%03d", i)
			c := &atomic.Int64{}
			counts[ref] = c
			bad := i%2 == 1
			err := reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
				"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
					c.Add(1)
					if bad {
						return nil, errors.New("flaky")
					}
					return []value.Tuple{{value.NewReal(1)}}, nil
				},
			}))
			if err != nil {
				t.Fatal(err)
			}
		}
		return query.NewContext(query.MapEnv{}, reg, 0), counts
	}
	bp, err := paperenv.SensorsSchema().FindBP("getTemperature", "")
	if err != nil {
		t.Fatal(err)
	}
	refs := []string{"s000", "s001", "s002", "s003"}
	inputs := []value.Tuple{{}, {}, {}, {}}

	t.Run("skip", func(t *testing.T) {
		ctx, _ := build()
		ctx.Degradation = resilience.SkipTuple
		skipped := make([]bool, len(refs))
		out := ctx.InvokeBatchTracked(bp, refs, inputs, skipped)
		for i := range refs {
			bad := i%2 == 1
			if bad != skipped[i] {
				t.Fatalf("item %d: skipped = %v, want %v", i, skipped[i], bad)
			}
			if bad && (out[i].Err != nil || out[i].Rows != nil) {
				t.Fatalf("item %d: skipped item should yield no rows, no error: %+v", i, out[i])
			}
			if !bad && len(out[i].Rows) != 1 {
				t.Fatalf("item %d: rows = %v", i, out[i].Rows)
			}
		}
	})
	t.Run("nullfill", func(t *testing.T) {
		ctx, _ := build()
		ctx.Degradation = resilience.NullFill
		skipped := make([]bool, len(refs))
		out := ctx.InvokeBatchTracked(bp, refs, inputs, skipped)
		for i := range refs {
			if i%2 == 1 {
				if !skipped[i] || len(out[i].Rows) != 1 || !out[i].Rows[0][0].IsNull() {
					t.Fatalf("item %d: want one all-NULL row + skipped, got %+v skipped=%v", i, out[i], skipped[i])
				}
			}
		}
	})
	t.Run("failfast", func(t *testing.T) {
		ctx, _ := build()
		ctx.Degradation = resilience.FailFast
		out := ctx.InvokeBatchTracked(bp, refs, inputs, nil)
		if out[1].Err == nil || out[3].Err == nil {
			t.Fatalf("failing items must carry their error: %+v", out)
		}
		if out[0].Err != nil || out[2].Err != nil {
			t.Fatalf("one item's failure must not fail its neighbours: %+v", out)
		}
	})
}
