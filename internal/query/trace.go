package query

import (
	"fmt"
	"strings"
	"time"

	"serena/internal/algebra"
	"serena/internal/schema"
)

// Traced wraps one operator of a query tree and records, across Eval calls,
// how many times it ran, how many rows it produced, and how much wall time
// the subtree consumed — the raw material of EXPLAIN ANALYZE.
//
// Because every Node evaluates its children internally, tracing a tree
// means REBUILDING it: Instrument reconstructs each operator with Traced
// children, so child evaluations route through their wrappers. The original
// tree is left untouched and may keep running elsewhere.
//
// A Traced tree is NOT safe for concurrent Eval calls (one-shot plans are
// evaluated sequentially; only the invocations inside a β node fan out, and
// those are counted by the service layer, not here).
type Traced struct {
	inner Node      // reconstruction of orig whose direct children are Traced
	orig  Node      // the wrapped operator, for labels
	kids  []*Traced // trace wrappers of the children, in order

	calls   int64
	rowsOut int64
	wall    time.Duration
	err     error // last evaluation error, if any
}

// Instrument rebuilds the plan with every operator wrapped in a Traced
// node. Evaluate the returned root as usual (it implements Node); then
// render the recorded trace with Render.
func Instrument(n Node) (*Traced, error) {
	kids := n.Children()
	tkids := make([]*Traced, len(kids))
	nodes := make([]Node, len(kids))
	for i, c := range kids {
		tc, err := Instrument(c)
		if err != nil {
			return nil, err
		}
		tkids[i] = tc
		nodes[i] = tc
	}
	rebuilt, err := withChildren(n, nodes)
	if err != nil {
		return nil, err
	}
	return &Traced{inner: rebuilt, orig: n, kids: tkids}, nil
}

// withChildren reconstructs an operator with replacement children (same
// per-type shape as the rewriter's reconstruction — there is no generic way
// to swap children on the AST).
func withChildren(n Node, kids []Node) (Node, error) {
	want := len(n.Children())
	if len(kids) != want {
		return nil, fmt.Errorf("query: trace: %T wants %d children, got %d", n, want, len(kids))
	}
	switch t := n.(type) {
	case *Base:
		return t, nil
	case *Project:
		return &Project{Child: kids[0], Attrs: t.Attrs}, nil
	case *Select:
		return &Select{Child: kids[0], Formula: t.Formula}, nil
	case *Rename:
		return &Rename{Child: kids[0], Old: t.Old, New: t.New}, nil
	case *Join:
		return &Join{Left: kids[0], Right: kids[1]}, nil
	case *SetOp:
		return &SetOp{Kind: t.Kind, Left: kids[0], Right: kids[1]}, nil
	case *Assign:
		return &Assign{Child: kids[0], Attr: t.Attr, Src: t.Src, Const: t.Const}, nil
	case *Invoke:
		return &Invoke{Child: kids[0], Proto: t.Proto, ServiceAttr: t.ServiceAttr}, nil
	case *Aggregate:
		return &Aggregate{Child: kids[0], GroupBy: t.GroupBy, Aggs: t.Aggs}, nil
	case *Window:
		return &Window{Child: kids[0], Period: t.Period}, nil
	case *Stream:
		return &Stream{Child: kids[0], Kind: t.Kind}, nil
	}
	return nil, fmt.Errorf("query: trace: unsupported node %T", n)
}

// ResultSchema implements Node.
func (t *Traced) ResultSchema(env Environment) (*schema.Extended, error) {
	return t.inner.ResultSchema(env)
}

// Eval implements Node, recording calls, output cardinality, and wall time
// of the subtree rooted here.
func (t *Traced) Eval(ctx *Context) (*algebra.XRelation, error) {
	start := time.Now()
	r, err := t.inner.Eval(ctx)
	t.wall += time.Since(start)
	t.calls++
	if err != nil {
		t.err = err
		return nil, err
	}
	t.rowsOut += int64(r.Len())
	return r, nil
}

// Children implements Node.
func (t *Traced) Children() []Node {
	out := make([]Node, len(t.kids))
	for i, k := range t.kids {
		out[i] = k
	}
	return out
}

// String implements Node (the original operator's rendering).
func (t *Traced) String() string { return t.orig.String() }

// Calls returns how many times the operator evaluated.
func (t *Traced) Calls() int64 { return t.calls }

// RowsOut returns the cumulative output cardinality.
func (t *Traced) RowsOut() int64 { return t.rowsOut }

// RowsIn returns the cumulative input cardinality (the sum of the
// children's outputs; 0 for leaves).
func (t *Traced) RowsIn() int64 {
	var in int64
	for _, k := range t.kids {
		in += k.rowsOut
	}
	return in
}

// Wall returns the cumulative wall time of the subtree rooted here.
func (t *Traced) Wall() time.Duration { return t.wall }

// Self returns the operator's own wall time: the subtree total minus the
// children's totals.
func (t *Traced) Self() time.Duration {
	self := t.wall
	for _, k := range t.kids {
		self -= k.wall
	}
	if self < 0 {
		self = 0
	}
	return self
}

// opLabel renders just the operator head (no operands) for plan lines.
// OpLabel renders a node's operator head (no children) — the label used by
// EXPLAIN ANALYZE rows and the continuous executor's delta report.
func OpLabel(n Node) string { return opLabel(n) }

func opLabel(n Node) string {
	switch t := n.(type) {
	case *Base:
		return t.Name
	case *Project:
		return fmt.Sprintf("project[%s]", strings.Join(t.Attrs, ", "))
	case *Select:
		return fmt.Sprintf("select[%s]", t.Formula)
	case *Rename:
		return fmt.Sprintf("rename[%s -> %s]", t.Old, t.New)
	case *Join:
		return "join"
	case *SetOp:
		return setOpNames[t.Kind]
	case *Assign:
		if t.Src != "" {
			return fmt.Sprintf("assign[%s := %s]", t.Attr, t.Src)
		}
		return fmt.Sprintf("assign[%s := %s]", t.Attr, t.Const)
	case *Invoke:
		if t.ServiceAttr != "" {
			return fmt.Sprintf("invoke[%s@%s]", t.Proto, t.ServiceAttr)
		}
		return fmt.Sprintf("invoke[%s]", t.Proto)
	case *Aggregate:
		full := t.String()
		return full[:strings.Index(full, "](")+1]
	case *Window:
		return fmt.Sprintf("window[%d]", t.Period)
	case *Stream:
		return fmt.Sprintf("stream[%s]", t.Kind)
	}
	return fmt.Sprintf("%T", n)
}

// Render formats the recorded trace as an annotated plan, one operator per
// line, children indented under their parent:
//
//	select[location = "office"]   calls=1 rows_in=4 rows_out=2 time=1.2ms self=3µs
//	  invoke[getTemperature]      calls=1 rows_in=4 rows_out=4 time=1.2ms self=1.2ms
//	    sensors                   calls=1 rows_in=0 rows_out=4 time=2µs self=2µs
func (t *Traced) Render() string {
	var b strings.Builder
	width := t.labelWidth(0)
	t.render(&b, 0, width)
	return b.String()
}

func (t *Traced) labelWidth(depth int) int {
	w := 2*depth + len(opLabel(t.orig))
	for _, k := range t.kids {
		if kw := k.labelWidth(depth + 1); kw > w {
			w = kw
		}
	}
	return w
}

func (t *Traced) render(b *strings.Builder, depth, width int) {
	label := strings.Repeat("  ", depth) + opLabel(t.orig)
	fmt.Fprintf(b, "%-*s  calls=%d rows_in=%d rows_out=%d time=%s self=%s",
		width, label, t.calls, t.RowsIn(), t.rowsOut, round(t.wall), round(t.Self()))
	if t.err != nil {
		fmt.Fprintf(b, " error=%v", t.err)
	}
	b.WriteByte('\n')
	for _, k := range t.kids {
		k.render(b, depth+1, width)
	}
}

// round trims durations to microsecond resolution for readability (0 stays
// 0s so plans of unevaluated operators remain unambiguous).
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
