package query_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/query"
	"serena/internal/value"
)

// TestNodeContracts exercises ResultSchema/Eval/Children/String uniformly
// for every node type over the paper environment.
func TestNodeContracts(t *testing.T) {
	env, reg, _ := paperSetup()
	nodes := []struct {
		name       string
		node       query.Node
		children   int
		salForm    string
		schemaOnly bool // continuous nodes: schema derivable, eval rejected
	}{
		{"base", query.NewBase("contacts"), 0, "contacts", false},
		{"project", query.NewProject(query.NewBase("contacts"), "name"), 1, "project[name](contacts)", false},
		{"select", query.NewSelect(query.NewBase("contacts"), algebra.True{}), 1, "select[true](contacts)", false},
		{"rename", query.NewRename(query.NewBase("contacts"), "name", "who"), 1, "rename[name -> who](contacts)", false},
		{"join", query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance")), 2, "join(contacts, surveillance)", false},
		{"union", query.NewUnion(query.NewBase("contacts"), query.NewBase("contacts")), 2, "union(contacts, contacts)", false},
		{"intersect", query.NewIntersect(query.NewBase("contacts"), query.NewBase("contacts")), 2, "intersect(contacts, contacts)", false},
		{"diff", query.NewDiff(query.NewBase("contacts"), query.NewBase("contacts")), 2, "diff(contacts, contacts)", false},
		{"assign", query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")), 1, `assign[text := "x"](contacts)`, false},
		{"invoke", query.NewInvoke(query.NewBase("sensors"), "getTemperature", ""), 1, "invoke[getTemperature](sensors)", false},
		{"aggregate", query.NewAggregate(query.NewBase("surveillance"), []string{"location"},
			[]algebra.AggSpec{{Func: algebra.Count, As: "n"}}), 1, "aggregate[count(*) as n by location](surveillance)", false},
		{"window", query.NewWindow(query.NewBase("contacts"), 5), 1, "window[5](contacts)", true},
		{"stream", query.NewStream(query.NewBase("contacts"), query.StreamDeletion), 1, "stream[deletion](contacts)", true},
	}
	for _, c := range nodes {
		if got := len(c.node.Children()); got != c.children {
			t.Errorf("%s: children = %d, want %d", c.name, got, c.children)
		}
		if got := c.node.String(); got != c.salForm {
			t.Errorf("%s: String = %q, want %q", c.name, got, c.salForm)
		}
		if _, err := c.node.ResultSchema(env); err != nil {
			t.Errorf("%s: ResultSchema: %v", c.name, err)
		}
		_, err := query.Evaluate(c.node, env, reg, 0)
		if c.schemaOnly {
			if err == nil {
				t.Errorf("%s: one-shot eval should be rejected", c.name)
			}
		} else if err != nil {
			t.Errorf("%s: Eval: %v", c.name, err)
		}
	}
}

func TestAggregateNodeEval(t *testing.T) {
	env, reg, _ := paperSetup()
	n := query.NewAggregate(query.NewBase("surveillance"), []string{"location"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	res, err := query.Evaluate(n, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("groups = %d", res.Relation.Len())
	}
	// Schema errors propagate from planning.
	bad := query.NewAggregate(query.NewBase("surveillance"), []string{"ghost"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	if _, err := bad.ResultSchema(env); err == nil {
		t.Fatal("bad aggregation accepted")
	}
	if _, err := query.Evaluate(bad, env, reg, 0); err == nil {
		t.Fatal("bad aggregation evaluated")
	}
}

func TestStreamKindFromString(t *testing.T) {
	for _, n := range []string{"insertion", "deletion", "heartbeat"} {
		k, ok := query.StreamKindFromString(n)
		if !ok || k.String() != n {
			t.Errorf("StreamKindFromString(%q) broken", n)
		}
	}
	if _, ok := query.StreamKindFromString("sideways"); ok {
		t.Error("bogus stream kind accepted")
	}
}

func TestErrorPropagationThroughNodes(t *testing.T) {
	env, reg, _ := paperSetup()
	bad := query.NewBase("ghost")
	// Every combinator must surface child errors.
	for _, n := range []query.Node{
		query.NewProject(bad, "x"),
		query.NewSelect(bad, algebra.True{}),
		query.NewRename(bad, "a", "b"),
		query.NewJoin(bad, query.NewBase("contacts")),
		query.NewJoin(query.NewBase("contacts"), bad),
		query.NewUnion(bad, bad),
		query.NewAssignConst(bad, "x", value.NewInt(1)),
		query.NewInvoke(bad, "p", ""),
		query.NewAggregate(bad, nil, []algebra.AggSpec{{Func: algebra.Count, As: "n"}}),
	} {
		if _, err := n.ResultSchema(env); err == nil {
			t.Errorf("%s: schema error not propagated", n)
		}
		if _, err := query.Evaluate(n, env, reg, 0); err == nil {
			t.Errorf("%s: eval error not propagated", n)
		}
	}
}

func TestInvokeErrorRendering(t *testing.T) {
	e := query.InvokeError{BP: "p[s]", Ref: "dev", Input: value.Tuple{value.NewInt(1)}, Err: errFixed}
	if got := e.Error(); got != "invoke p[s] on dev(1): boom" {
		t.Fatalf("Error() = %q", got)
	}
}

var errFixed = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }
