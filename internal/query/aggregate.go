package query

import (
	"fmt"
	"strings"

	"serena/internal/algebra"
	"serena/internal/schema"
)

// Aggregate is the grouping/aggregation extension operator (see
// internal/algebra: the paper's Section 1.2 motivates mean-temperature
// queries; the formal algebra leaves aggregation to extensions). SAL
// syntax:
//
//	aggregate[mean(temperature) as avg by location](q)
//	aggregate[count(*) as n](q)
type Aggregate struct {
	Child   Node
	GroupBy []string
	Aggs    []algebra.AggSpec
}

// NewAggregate builds an aggregation node.
func NewAggregate(child Node, groupBy []string, aggs []algebra.AggSpec) *Aggregate {
	return &Aggregate{Child: child, GroupBy: groupBy, Aggs: aggs}
}

// ResultSchema implements Node.
func (a *Aggregate) ResultSchema(env Environment) (*schema.Extended, error) {
	cs, err := a.Child.ResultSchema(env)
	if err != nil {
		return nil, err
	}
	return algebra.AggregateSchema(cs, a.GroupBy, a.Aggs)
}

// Eval implements Node.
func (a *Aggregate) Eval(ctx *Context) (*algebra.XRelation, error) {
	c, err := a.Child.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return algebra.Aggregate(c, a.GroupBy, a.Aggs)
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// String implements Node.
func (a *Aggregate) String() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.String()
	}
	spec := strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		spec += " by " + strings.Join(a.GroupBy, ", ")
	}
	return fmt.Sprintf("aggregate[%s](%s)", spec, a.Child)
}
