package query_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// slowSensor injects latency per invocation.
type slowSensor struct {
	*device.Sensor
	d time.Duration
}

func (s slowSensor) Invoke(proto string, in value.Tuple, at service.Instant) ([]value.Tuple, error) {
	time.Sleep(s.d)
	return s.Sensor.Invoke(proto, in, at)
}

func slowEnv(t *testing.T, n int, latency time.Duration) (query.MapEnv, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Tuple, n)
	for i := 0; i < n; i++ {
		ref := fmt.Sprintf("s%03d", i)
		if err := reg.Register(slowSensor{device.NewSensor(ref, "lab", float64(i)), latency}); err != nil {
			t.Fatal(err)
		}
		rows[i] = value.Tuple{value.NewService(ref), value.NewString("lab")}
	}
	sensors := algebra.MustNew(paperenv.SensorsSchema(), rows)
	return query.MapEnv{"sensors": sensors}, reg
}

func TestParallelInvokeSameResultAsSequential(t *testing.T) {
	env, reg := slowEnv(t, 16, 0)
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")

	seq := query.NewContext(env, reg, 0)
	rSeq, err := query.EvaluateCtx(q, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := query.NewContext(env, reg, 0)
	par.Parallelism = 8
	rPar, err := query.EvaluateCtx(q, par)
	if err != nil {
		t.Fatal(err)
	}
	if !rSeq.Relation.EqualContents(rPar.Relation) {
		t.Fatal("parallel invocation changed the result")
	}
	if rPar.Stats.Passive != 16 {
		t.Fatalf("parallel stats = %+v", rPar.Stats)
	}
}

func TestParallelInvokeIsFasterUnderLatency(t *testing.T) {
	const n, lat = 16, 10 * time.Millisecond
	env, reg := slowEnv(t, n, lat)
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")

	start := time.Now()
	if _, err := query.Evaluate(q, env, reg, 0); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(start)

	ctx := query.NewContext(env, reg, 1)
	ctx.Parallelism = 8
	start = time.Now()
	if _, err := query.EvaluateCtx(q, ctx); err != nil {
		t.Fatal(err)
	}
	par := time.Since(start)
	// Sequential ≈ n×lat = 160ms; parallel ≈ (n/8)×lat = 20ms. Require a
	// conservative 3× to stay robust on loaded machines.
	if par*3 > seq {
		t.Fatalf("parallel (%v) not meaningfully faster than sequential (%v)", par, seq)
	}
}

func TestParallelActiveInvocationsRecordAllActions(t *testing.T) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{"contacts": paperenv.Contacts()}
	q := query.NewInvoke(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")),
		"sendMessage", "")
	ctx := query.NewContext(env, reg, 0)
	ctx.Parallelism = 4
	res, err := query.EvaluateCtx(q, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions.Len() != 3 || res.Relation.Len() != 3 {
		t.Fatalf("actions = %s, rows = %d", res.Actions, res.Relation.Len())
	}
	total := len(dev.Messengers["email"].Outbox()) + len(dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d", total)
	}
}

func TestParallelInvokeErrorIsDeterministic(t *testing.T) {
	// Several failing services: the reported error must be the first in
	// input order regardless of completion order.
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("dead")
	var rows []value.Tuple
	for i := 0; i < 8; i++ {
		ref := fmt.Sprintf("s%d", i)
		i := i
		err := reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
			"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				time.Sleep(time.Duration(8-i) * time.Millisecond) // later inputs finish first
				if i >= 2 {
					return nil, fmt.Errorf("%w: %d", boom, i)
				}
				return []value.Tuple{{value.NewReal(1)}}, nil
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, value.Tuple{value.NewService(ref), value.NewString("lab")})
	}
	env := query.MapEnv{"sensors": algebra.MustNew(paperenv.SensorsSchema(), rows)}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	for trial := 0; trial < 5; trial++ {
		ctx := query.NewContext(env, reg, service.Instant(trial))
		ctx.Parallelism = 8
		_, err := query.EvaluateCtx(q, ctx)
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
		// First failing input is s2.
		if want := "dead: 2"; !strings.Contains(err.Error(), want) {
			t.Fatalf("trial %d: err = %v, want first-in-order %q", trial, err, want)
		}
	}
}

func TestParallelSkipPolicy(t *testing.T) {
	// Error policy + parallelism: failing tuples are skipped concurrently.
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	var rows []value.Tuple
	for i := 0; i < 8; i++ {
		ref := fmt.Sprintf("s%d", i)
		i := i
		_ = reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
			"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				if i%2 == 1 {
					return nil, errors.New("flaky")
				}
				return []value.Tuple{{value.NewReal(float64(i))}}, nil
			},
		}))
		rows = append(rows, value.Tuple{value.NewService(ref), value.NewString("lab")})
	}
	env := query.MapEnv{"sensors": algebra.MustNew(paperenv.SensorsSchema(), rows)}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	ctx := query.NewContext(env, reg, 0)
	ctx.Parallelism = 4
	var skips int
	ctx.OnInvokeError = func(schema.BindingPattern, string, value.Tuple, error) error {
		skips++ // called under the context's lock
		return nil
	}
	res, err := query.EvaluateCtx(q, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 4 || skips != 4 {
		t.Fatalf("rows = %d, skips = %d, want 4/4", res.Relation.Len(), skips)
	}
}
