package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"serena/internal/algebra"
	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
)

// β invocation counters as seen from the algebra (the service layer counts
// physical calls; these split them by binding-pattern mode and add memo and
// degradation outcomes).
var (
	obsQueryActive    = obs.Default.Counter("query.invoke.active")
	obsQueryPassive   = obs.Default.Counter("query.invoke.passive")
	obsQueryMemoized  = obs.Default.Counter("query.invoke.memoized")
	obsQueryDegraded  = obs.Default.Counter("query.invoke.degraded")
	obsQueryCoalesced = obs.Default.Counter("query.invoke.coalesced")
)

// Action is one element of a query's action set (Definition 8): the
// invocation of an active binding pattern on a service with an input tuple.
type Action struct {
	BP    string // binding pattern identity "proto[serviceAttr]"
	Ref   string // service reference
	Input value.Tuple
}

// Key is the set identity of the action.
func (a Action) Key() string { return a.BP + "|" + a.Ref + "|" + a.Input.Key() }

// String renders "(bp, ref, input)" like Example 6.
func (a Action) String() string {
	return fmt.Sprintf("(%s, %s, %s)", a.BP, a.Ref, a.Input)
}

// ActionSet is the set of actions triggered by a query against an
// environment: Actions_p(q) of Definition 8. It is safe for concurrent use
// (the invocation operator may fire asynchronously, Section 5.1).
type ActionSet struct {
	mu    sync.Mutex
	byKey map[string]Action
}

// NewActionSet returns an empty action set.
func NewActionSet() *ActionSet { return &ActionSet{byKey: make(map[string]Action)} }

// Add records an action (idempotent — it is a set).
func (s *ActionSet) Add(a Action) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byKey[a.Key()] = a
}

// Len returns the cardinality.
func (s *ActionSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Contains reports membership.
func (s *ActionSet) Contains(a Action) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byKey[a.Key()]
	return ok
}

// Equal reports set equality — the action-set half of query equivalence
// (Definition 9).
func (s *ActionSet) Equal(o *ActionSet) bool {
	sk := s.keySet()
	ok := o.keySet()
	if len(sk) != len(ok) {
		return false
	}
	for k := range sk {
		if !ok[k] {
			return false
		}
	}
	return true
}

func (s *ActionSet) keySet() map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]bool, len(s.byKey))
	for k := range s.byKey {
		out[k] = true
	}
	return out
}

// Sorted returns the actions in deterministic order.
func (s *ActionSet) Sorted() []Action {
	s.mu.Lock()
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	out := make([]Action, len(keys))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// String renders "{(bp, ref, input), …}".
func (s *ActionSet) String() string {
	parts := make([]string, 0, s.Len())
	for _, a := range s.Sorted() {
		parts = append(parts, a.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ContinuousHooks is implemented by the continuous executor (internal/cq)
// to give Window and Stream nodes their time-aware semantics. One-shot
// evaluation leaves it nil.
type ContinuousHooks interface {
	EvalWindow(w *Window, ctx *Context) (*algebra.XRelation, error)
	EvalStream(s *Stream, ctx *Context) (*algebra.XRelation, error)
}

// Context carries everything one evaluation needs: the environment, the
// service registry, the evaluation instant τ, the recorded action set, the
// per-instant memo for passive invocations, and optional continuous hooks.
type Context struct {
	Env      Environment
	Registry *service.Registry
	At       service.Instant
	Actions  *ActionSet

	// Memo caches passive invocation results within this instant. Nil
	// disables memoization (ablation: every tuple re-invokes).
	Memo *service.Memo

	// Continuous is set by the continuous executor; nil for one-shot
	// queries.
	Continuous ContinuousHooks

	// OnInvokeError, when non-nil, observes every physical invocation
	// failure (unreachable device, remote error, open breaker). With
	// Degradation left at resilience.Default it also DECIDES: returning
	// nil skips the failing tuple (it contributes no output, like an
	// empty invocation result); returning an error aborts the query; and
	// a nil OnInvokeError fails fast — the right default for one-shot
	// queries, while the continuous executor installs a collector so one
	// flaky device cannot kill a standing query. With an explicit
	// Degradation policy the callback is a pure observer (its non-nil
	// return still vetoes/aborts) and the policy decides.
	//
	// For ACTIVE binding patterns the action is recorded before the
	// physical call, so a failed active invocation still appears in the
	// action set: it was attempted, and its physical effect is unknown.
	OnInvokeError func(bp schema.BindingPattern, ref string, input value.Tuple, err error) error

	// Degradation selects what the invocation operator β does with a
	// tuple whose physical invocation failed: resilience.FailFast aborts
	// the query, resilience.SkipTuple drops the tuple (the paper's
	// no-service case), resilience.NullFill keeps it with its virtual
	// attributes realized as NULL. resilience.Default preserves the
	// legacy OnInvokeError contract above.
	Degradation resilience.DegradationPolicy

	// Ctx carries cancellation and deadlines down through
	// Registry.InvokeCtx into the physical invocation (remote round trips
	// included). Nil means context.Background().
	Ctx context.Context

	// Parallelism bounds how many service invocations one invocation
	// operator may run concurrently (Section 5.1: invocations are handled
	// asynchronously; Section 3.2 makes order irrelevant at an instant).
	// Values < 2 mean sequential.
	Parallelism int

	// BatchSize bounds how many invocations the batch planner packs into
	// one registry dispatch (one wire frame for remote services). Zero
	// means DefaultBatchSize when the registry holds at least one
	// batch-capable service (a remote proxy) and per-tuple dispatch
	// otherwise; positive forces the planner on at that chunk size;
	// negative disables batching entirely (ablation and interop escape
	// hatch).
	BatchSize int

	// Span is the enclosing trace span for this evaluation (nil when the
	// evaluation is unsampled — the common case). When set, every β
	// invocation records a per-tuple child span carrying the binding
	// pattern, service reference, input tuple and realized outcome, and
	// the span rides the context.Context down to the registry and across
	// the wire. All span operations are nil-safe, so the unsampled hot
	// path pays one pointer check per tuple.
	Span *trace.Span

	// Stats counts invocations actually reaching services.
	Stats InvokeStats

	// statsMu guards Stats and OnInvokeError calls under parallel
	// invocation.
	statsMu sync.Mutex

	// published remembers how much of Stats has already been flushed to
	// the process-wide obs counters (see PublishObsStats).
	published InvokeStats
}

// InvokeError records one skipped invocation failure.
type InvokeError struct {
	BP    string
	Ref   string
	Input value.Tuple
	Err   error
}

// Error implements error.
func (e InvokeError) Error() string {
	return fmt.Sprintf("invoke %s on %s%s: %v", e.BP, e.Ref, e.Input, e.Err)
}

// InvokeStats counts the physical invocations performed through a context.
// Coalesced counts lookups that joined another worker's in-flight call
// instead of invoking — like Memoized, no physical call happened.
type InvokeStats struct {
	Passive   int64
	Active    int64
	Memoized  int64
	Coalesced int64
}

// NewContext builds a one-shot evaluation context at the given instant.
func NewContext(env Environment, reg *service.Registry, at service.Instant) *Context {
	return &Context{
		Env:      env,
		Registry: reg,
		At:       at,
		Actions:  NewActionSet(),
		Memo:     service.NewMemo(at),
	}
}

// Invoke implements algebra.Invoker: it records actions for active binding
// patterns (Definition 8), memoizes passive invocations within the instant
// (Section 3.2 determinism), and delegates the physical call to the
// registry.
func (c *Context) Invoke(bp schema.BindingPattern, ref string, input value.Tuple) ([]value.Tuple, error) {
	return c.InvokeTracked(bp, ref, input, nil)
}

// InvokeTracked is Invoke with a skip indicator: when a physical failure is
// absorbed by the error policy, *skipped (if non-nil) is set and empty rows
// are returned — callers caching results across instants (the continuous
// executor's delta cache) must not remember such results, so the tuple is
// retried at the next instant.
func (c *Context) InvokeTracked(bp schema.BindingPattern, ref string, input value.Tuple, skipped *bool) ([]value.Tuple, error) {
	return c.InvokeObserved(bp, ref, input, skipped, nil)
}

// InvokeObserved is InvokeTracked with one more out-parameter: when the
// physical call fails, *physErr (if non-nil) receives the RAW registry
// error even if the degradation policy then absorbs it. The continuous
// executor needs the distinction for federation (Definition 8): an active
// invocation absorbed after resilience.ErrOutcomeUnknown may have fired on
// the peer, so its tuple must be pinned rather than retried next tick.
func (c *Context) InvokeObserved(bp schema.BindingPattern, ref string, input value.Tuple, skipped *bool, physErr *error) ([]value.Tuple, error) {
	var span *trace.Span
	if c.Span != nil { // sampled evaluation: record this tuple's β span
		span = c.Span.Child(trace.SpanInvoke)
		span.SetAttr("bp", bp.ID())
		span.SetAttr("ref", ref)
		span.SetAttr("in", input.String())
	}
	if bp.Active() {
		c.Actions.Add(Action{BP: bp.ID(), Ref: ref, Input: input.Clone()})
		c.bump(&c.Stats.Active)
		span.SetAttr("mode", "active")
		rows, err := c.Registry.InvokeCtx(trace.ContextWith(c.ctx(), span), bp.Proto.Name, ref, input, c.At)
		if err != nil {
			return c.invokeFailed(bp, ref, input, err, skipped, physErr, span)
		}
		c.finishInvokeSpan(span, rows)
		return rows, nil
	}
	if c.Memo != nil {
		// Coalescing memo path: a hit returns the cached rows, a shared
		// flight waits for the concurrent owner's result (closing the
		// check-then-invoke-then-put window that let two parallel workers
		// both invoke the same key), and an owner performs the one
		// physical call for everyone.
		cached, flight, st := c.Memo.Begin(bp.Proto.Name, ref, input)
		switch st {
		case service.BeginHit:
			c.bump(&c.Stats.Memoized)
			span.SetAttr("mode", "memoized")
			c.finishInvokeSpan(span, cached)
			return cached, nil
		case service.BeginShared:
			rows, err := flight.Wait()
			if err != nil {
				return c.invokeFailed(bp, ref, input, err, skipped, physErr, span)
			}
			c.bump(&c.Stats.Coalesced)
			span.SetAttr("mode", "coalesced")
			c.finishInvokeSpan(span, rows)
			return rows, nil
		}
		span.SetAttr("mode", "passive")
		rows, err := c.Registry.InvokeCtx(trace.ContextWith(c.ctx(), span), bp.Proto.Name, ref, input, c.At)
		flight.Complete(rows, err)
		if err != nil {
			return c.invokeFailed(bp, ref, input, err, skipped, physErr, span)
		}
		c.bump(&c.Stats.Passive)
		c.finishInvokeSpan(span, rows)
		return rows, nil
	}
	span.SetAttr("mode", "passive")
	rows, err := c.Registry.InvokeCtx(trace.ContextWith(c.ctx(), span), bp.Proto.Name, ref, input, c.At)
	if err != nil {
		return c.invokeFailed(bp, ref, input, err, skipped, physErr, span)
	}
	c.bump(&c.Stats.Passive)
	c.finishInvokeSpan(span, rows)
	return rows, nil
}

// finishInvokeSpan stamps a successful β span with its row count.
func (c *Context) finishInvokeSpan(span *trace.Span, rows []value.Tuple) {
	if span == nil {
		return
	}
	span.SetAttrInt("rows", int64(len(rows)))
	span.Finish()
}

// PublishObsStats flushes this context's invocation statistics into the
// process-wide obs counters ("query.invoke.passive" and friends), as
// deltas since the previous flush so repeated calls never double-count.
// EvaluateCtx and the continuous executor call it once per evaluation:
// batching at evaluation granularity keeps the per-invocation hot path
// free of global atomics while the registry stays exact.
func (c *Context) PublishObsStats() {
	c.statsMu.Lock()
	d := InvokeStats{
		Passive:   c.Stats.Passive - c.published.Passive,
		Active:    c.Stats.Active - c.published.Active,
		Memoized:  c.Stats.Memoized - c.published.Memoized,
		Coalesced: c.Stats.Coalesced - c.published.Coalesced,
	}
	c.published = c.Stats
	c.statsMu.Unlock()
	obsQueryPassive.Add(d.Passive)
	obsQueryActive.Add(d.Active)
	obsQueryMemoized.Add(d.Memoized)
	obsQueryCoalesced.Add(d.Coalesced)
}

// ctx returns the evaluation context's context.Context (never nil).
func (c *Context) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// MaxParallel implements algebra.ParallelInvoker.
func (c *Context) MaxParallel() int { return c.Parallelism }

// CountActive counts one active invocation without performing it — the
// continuous executor uses it when recovery replays a logged active β from
// its recorded outcome instead of re-firing it (the physical call DID
// happen, before the crash).
func (c *Context) CountActive() { c.bump(&c.Stats.Active) }

func (c *Context) bump(counter *int64) {
	c.statsMu.Lock()
	*counter++
	c.statsMu.Unlock()
}

// invokeFailed applies the degradation policy to one failed invocation.
// The rows it returns stand in for the invocation result: nil rows with
// *skipped set means "drop the tuple"; a single all-NULL row (NullFill)
// realizes the virtual attributes as unknown. Skipped/null-filled results
// must never be cached across instants — the tuple is retried at the next
// one (*skipped signals that to the continuous executor's delta cache).
func (c *Context) invokeFailed(bp schema.BindingPattern, ref string, input value.Tuple, err error, skipped *bool, physErr *error, span *trace.Span) ([]value.Tuple, error) {
	if physErr != nil {
		*physErr = err
	}
	span.SetAttr("error", err.Error())
	defer span.Finish()
	if c.Degradation == resilience.Default {
		// Legacy contract: no collector → fail fast; a collector decides
		// by its return value (nil = skip the tuple).
		if c.OnInvokeError == nil {
			span.SetAttr("degraded", "failfast")
			return nil, err
		}
		c.statsMu.Lock()
		policyErr := c.OnInvokeError(bp, ref, input, err)
		c.statsMu.Unlock()
		if policyErr == nil {
			obsQueryDegraded.Inc()
			span.SetAttr("degraded", "skip")
			if skipped != nil {
				*skipped = true
			}
		} else {
			span.SetAttr("degraded", "abort")
		}
		return nil, policyErr
	}
	// Explicit policy: the collector observes (a non-nil return still
	// vetoes and aborts the query), then the policy decides.
	if c.OnInvokeError != nil {
		c.statsMu.Lock()
		policyErr := c.OnInvokeError(bp, ref, input, err)
		c.statsMu.Unlock()
		if policyErr != nil {
			span.SetAttr("degraded", "abort")
			return nil, policyErr
		}
	}
	switch c.Degradation {
	case resilience.SkipTuple:
		obsQueryDegraded.Inc()
		span.SetAttr("degraded", "skip")
		if skipped != nil {
			*skipped = true
		}
		return nil, nil
	case resilience.NullFill:
		obsQueryDegraded.Inc()
		span.SetAttr("degraded", "nullfill")
		if skipped != nil {
			*skipped = true
		}
		row := make(value.Tuple, bp.Proto.Output.Arity())
		for i := range row {
			row[i] = value.NewNull()
		}
		return []value.Tuple{row}, nil
	default: // resilience.FailFast
		span.SetAttr("degraded", "failfast")
		return nil, err
	}
}
