// Package trace is serena's invocation-tracing and tuple-lineage core: a
// minimal span model (trace ID, span ID, parent, attributes) recorded into
// a fixed-size lock-free ring buffer, so retention is bounded and recording
// stays off the allocator-heavy paths of full tracing stacks.
//
// Design constraints, in order:
//
//   - The β hot path must stay within the repository's ≤5% BenchmarkInvoke
//     overhead budget. The sampling decision is therefore HEAD-BASED and
//     made once per root (one per continuous-query tick or one-shot
//     evaluation): an unsampled root yields a nil *Span, every Span method
//     is nil-safe, and the per-tuple cost of an unsampled evaluation is a
//     single nil check. The 1-in-N decision itself is one atomic add.
//
//   - A trace must stay coherent ACROSS THE WIRE: the client side exports
//     (TraceID, SpanID) for the frame header, and the server side resumes
//     the trace with StartRemote, so a remote invocation renders as one
//     tree — tick → β tuple → wire round trip → server-side execution.
//
//   - Like internal/obs, the package is a dependency-free leaf (standard
//     library only) so every layer — algebra, query, cq, service, wire —
//     can record into it without import cycles.
//
// Relation to the paper: a query's action set (Gripay et al., EDBT 2010,
// Definition 8) says WHICH invocations a query triggers; a trace records
// which invocations actually HAPPENED at an instant, each with its realized
// outcome (rows, retries, breaker state, degradation policy applied). The
// lineage view (Lineage) is the per-tuple join of the two: for a given
// tuple key, every β span that touched it.
package trace

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"
)

// SpanInvoke is the name of a per-tuple β invocation span. It is shared
// between the layer that records it (internal/query) and the layers that
// query it back out for lineage (internal/pems, the shell), so the two
// cannot drift apart.
const SpanInvoke = "invoke"

// Attr is one key/value annotation on a span. Values are strings: spans are
// a debugging surface, not a metrics pipeline (internal/obs holds numbers).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace. A span is owned by the goroutine
// driving the operation until Finish, which publishes it to the tracer's
// ring; after Finish it must not be mutated. All methods are nil-safe: an
// unsampled trace hands out nil spans and the instrumentation call sites
// need no conditionals.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr

	tracer *Tracer
}

// Child starts a sub-span. Nil-safe: a nil receiver returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		TraceID:  s.TraceID,
		SpanID:   s.tracer.nextID(),
		ParentID: s.SpanID,
		Name:     name,
		Start:    time.Now(),
		tracer:   s.tracer,
	}
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. Nil-safe.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: fmt.Sprintf("%d", v)})
}

// Attr returns the value of the named attribute ("" when absent or nil).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Finish stamps the duration and publishes the span to the tracer's ring.
// Nil-safe; finishing twice publishes twice (don't).
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
	s.tracer.ring.put(s)
}

// Trace returns the trace ID (0 for nil — the wire encodes 0 as "not
// traced", so an unsampled invocation propagates nothing).
func (s *Span) Trace() uint64 {
	if s == nil {
		return 0
	}
	return s.TraceID
}

// ID returns the span ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.SpanID
}

// TraceHex renders the trace ID for log correlation ("" for nil).
func (s *Span) TraceHex() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.TraceID)
}

// LogAttrs returns slog attributes (trace_id, span_id) for correlating
// structured log lines with spans. Nil yields no attributes, so call sites
// can log unconditionally.
func (s *Span) LogAttrs() []slog.Attr {
	if s == nil {
		return nil
	}
	return []slog.Attr{
		slog.String("trace_id", s.TraceHex()),
		slog.String("span_id", fmt.Sprintf("%016x", s.SpanID)),
	}
}

// Tracer issues spans and owns their retention ring. The zero value is not
// usable; use New.
type Tracer struct {
	ring *ring
	// every is the head-sampling period: 0 disables tracing, 1 samples
	// every root, N samples one root in N.
	every atomic.Int64
	// roots counts sampling decisions; ids hands out span/trace IDs.
	roots atomic.Uint64
	ids   atomic.Uint64
}

// New returns a tracer retaining up to size finished spans (rounded up to a
// power of two, minimum 64) and sampling one root in every.
func New(size int, every int64) *Tracer {
	t := &Tracer{ring: newRing(size)}
	t.every.Store(every)
	// Seed the ID sequence from the clock so concurrently-started processes
	// (core PEMS and pemsd nodes) don't collide on span IDs.
	t.ids.Store(uint64(time.Now().UnixNano()))
	return t
}

// DefaultSampleEvery is the Default tracer's head-sampling period: sparse
// enough that amortized per-invocation overhead is far below the ≤5%
// BenchmarkInvoke budget, frequent enough that a busy executor always has
// recent traces in the ring.
const DefaultSampleEvery = 64

// DefaultRingSize bounds the Default tracer's retention. The retained spans
// are LIVE heap that every GC cycle must scan, and on small heaps that scan
// — not span creation, which amortizes to ~2.5µs per sampled root — is the
// dominant tracing cost: BenchmarkInvokeTraceOverhead measures ~2-3% at 512
// retained spans versus >10% at 4096. 512 spans is roughly five traced
// ticks of a 100-tuple invocation query, a comfortable window for the
// interactive .trace/.lineage surface, which only reads recent ticks.
const DefaultRingSize = 512

// Default is the process-wide tracer used by the instrumented layers.
var Default = New(DefaultRingSize, DefaultSampleEvery)

// SetSampleEvery sets the head-sampling period: 0 disables tracing, 1
// samples every root, n samples one root in n.
func (t *Tracer) SetSampleEvery(n int64) {
	if n < 0 {
		n = 0
	}
	t.every.Store(n)
}

// SampleEvery returns the current head-sampling period.
func (t *Tracer) SampleEvery() int64 { return t.every.Load() }

// Active reports whether the tracer records anything at all. Hot paths use
// it to skip even the context lookup when tracing is off.
func (t *Tracer) Active() bool { return t.every.Load() != 0 }

// nextID returns a fresh non-zero ID (splitmix64 over a counter: cheap,
// well distributed, and 0 — the "no trace" sentinel — is never produced).
func (t *Tracer) nextID() uint64 {
	for {
		x := t.ids.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// StartRoot makes the head sampling decision and, when sampled, starts a
// root span. Everything under an unsampled root is nil and costs one nil
// check per instrumentation site.
func (t *Tracer) StartRoot(name string) *Span {
	every := t.every.Load()
	if every == 0 {
		return nil
	}
	if every > 1 && t.roots.Add(1)%uint64(every) != 0 {
		return nil
	}
	return t.newRoot(name)
}

// ForceRoot starts a root span regardless of the sampling period (the
// shell's .trace command: the user asked for THIS evaluation). It works
// even when sampling is disabled.
func (t *Tracer) ForceRoot(name string) *Span { return t.newRoot(name) }

func (t *Tracer) newRoot(name string) *Span {
	id := t.nextID()
	return &Span{TraceID: id, SpanID: id, Name: name, Start: time.Now(), tracer: t}
}

// StartRemote resumes a trace propagated across the wire: the server side
// of a remote invocation records its execution as a child of the client's
// span. A zero traceID (unsampled or pre-trace peer) yields nil.
func (t *Tracer) StartRemote(name string, traceID, parentID uint64) *Span {
	if traceID == 0 {
		return nil
	}
	return &Span{TraceID: traceID, SpanID: t.nextID(), ParentID: parentID, Name: name, Start: time.Now(), tracer: t}
}

// Snapshot returns the finished spans currently retained, oldest first.
func (t *Tracer) Snapshot() []*Span { return t.ring.snapshot() }

// TraceSpans returns the retained spans of one trace, in start order.
func (t *Tracer) TraceSpans(traceID uint64) []*Span {
	var out []*Span
	for _, s := range t.ring.snapshot() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Reset drops every retained span (tests).
func (t *Tracer) Reset() { t.ring.reset() }

// ctxKey carries the active span through a context.Context.
type ctxKey struct{}

// ContextWith returns a context carrying the span. A nil span returns ctx
// unchanged, so untraced paths never pay for context wrapping.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by the context, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
