package trace

import "sync/atomic"

// ring is a fixed-size lock-free buffer of finished spans. Writers claim a
// slot with one atomic add and store a pointer; the newest spans overwrite
// the oldest, bounding retention without any locking or freeing. Snapshots
// are read with atomic loads — a snapshot taken during concurrent writes is
// each-slot-consistent (a slot holds either the old or the new span, never
// a torn value), which is all a debugging surface needs.
type ring struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
	mask  uint64
}

// newRing sizes the buffer to the next power of two ≥ size (minimum 64) so
// slot indexing is a mask, not a modulo.
func newRing(size int) *ring {
	n := 64
	for n < size {
		n <<= 1
	}
	return &ring{slots: make([]atomic.Pointer[Span], n), mask: uint64(n - 1)}
}

func (r *ring) put(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(s)
}

// snapshot returns the retained spans oldest-first. The write cursor may
// advance while we read; the result is a best-effort window, never a torn
// span.
func (r *ring) snapshot() []*Span {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if s := r.slots[i&r.mask].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (r *ring) reset() {
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.next.Store(0)
}
