package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := New(128, 1)
	root := tr.ForceRoot("tick")
	root.SetAttrInt("instant", 7)
	child := root.Child("query")
	child.SetAttr("query", "hot")
	grand := child.Child("invoke")
	grand.SetAttr("ref", "sensor01")
	grand.Finish()
	child.Finish()
	root.Finish()

	spans := tr.TraceSpans(root.Trace())
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %s has trace %x, want %x", s.Name, s.TraceID, root.TraceID)
		}
	}
	if grand.ParentID != child.SpanID || child.ParentID != root.SpanID {
		t.Fatal("parent chain broken")
	}
	out := RenderTree(spans)
	for _, want := range []string{"tick", "query", "invoke", "instant=7", "ref=sensor01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
	// The grandchild renders indented under the child.
	if strings.Index(out, "tick") > strings.Index(out, "invoke") {
		t.Fatalf("root should render before descendants:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.Finish()
	if s.Child("x") != nil {
		t.Fatal("nil span's child should be nil")
	}
	if s.Trace() != 0 || s.ID() != 0 || s.TraceHex() != "" || s.Attr("k") != "" {
		t.Fatal("nil span accessors should return zero values")
	}
	if got := s.LogAttrs(); got != nil {
		t.Fatalf("nil span LogAttrs = %v, want nil", got)
	}
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span must not be stored in context")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(64, 4)
	sampled := 0
	for i := 0; i < 40; i++ {
		if tr.StartRoot("r") != nil {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 roots at 1-in-4, want 10", sampled)
	}
	tr.SetSampleEvery(0)
	if tr.Active() {
		t.Fatal("every=0 should deactivate")
	}
	if tr.StartRoot("r") != nil {
		t.Fatal("deactivated tracer sampled a root")
	}
	if tr.ForceRoot("r") == nil {
		t.Fatal("ForceRoot must work even when sampling is off")
	}
}

func TestRingBounds(t *testing.T) {
	tr := New(64, 1)
	for i := 0; i < 200; i++ {
		tr.ForceRoot("r").Finish()
	}
	spans := tr.Snapshot()
	if len(spans) != 64 {
		t.Fatalf("ring retained %d spans, want 64", len(spans))
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Fatal("Reset should drop all spans")
	}
}

func TestConcurrentFinish(t *testing.T) {
	tr := New(256, 1)
	root := tr.ForceRoot("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("work")
				c.SetAttrInt("i", int64(i))
				c.Finish()
			}
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(tr.Snapshot()); got != 256 {
		t.Fatalf("retained %d spans, want full ring of 256", got)
	}
}

func TestRemotePropagation(t *testing.T) {
	client := New(64, 1)
	server := New(64, 1)
	root := client.ForceRoot("roundtrip")
	// The wire carries (Trace(), ID()); zero means "not traced".
	remote := server.StartRemote("server", root.Trace(), root.ID())
	if remote == nil || remote.TraceID != root.TraceID || remote.ParentID != root.SpanID {
		t.Fatalf("remote span not linked: %+v", remote)
	}
	remote.Finish()
	root.Finish()
	if server.StartRemote("server", 0, 0) != nil {
		t.Fatal("zero trace ID must yield nil (unsampled or old peer)")
	}
	// Rendering the merged view shows server under client.
	merged := append(client.TraceSpans(root.Trace()), server.TraceSpans(root.Trace())...)
	out := RenderTree(merged)
	if !strings.Contains(out, "server") || !strings.Contains(out, "roundtrip") {
		t.Fatalf("merged render missing spans:\n%s", out)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(64, 1)
	s := tr.ForceRoot("r")
	ctx := ContextWith(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if FromContext(context.Background()) != nil || FromContext(nil) != nil {
		t.Fatal("empty contexts should yield nil")
	}
}

func TestLineage(t *testing.T) {
	tr := New(256, 1)
	for tick := 0; tick < 3; tick++ {
		root := tr.ForceRoot("cq.tick")
		root.SetAttrInt("instant", int64(tick))
		q := root.Child("cq.query")
		q.SetAttr("query", "hot")
		inv := q.Child(SpanInvoke)
		inv.SetAttr("ref", "sensor01")
		inv.SetAttr("in", "(office)")
		inv.Finish()
		q.Finish()
		root.Finish()
	}
	got := tr.Lineage("hot", "sensor01", SpanInvoke)
	if len(got) != 3 {
		t.Fatalf("lineage found %d entries, want 3", len(got))
	}
	if got[0].Query != "hot" || got[0].Instant != "0" || got[2].Instant != "2" {
		t.Fatalf("lineage entries wrong: %+v", got)
	}
	if len(tr.Lineage("other", "sensor01", SpanInvoke)) != 0 {
		t.Fatal("lineage should filter by query name")
	}
	if len(tr.Lineage("", "office", SpanInvoke)) != 3 {
		t.Fatal("lineage should match tuple-key fragments in input attrs")
	}
}

func TestHandler(t *testing.T) {
	tr := New(64, 1)
	root := tr.ForceRoot("tick")
	c := root.Child("invoke")
	c.SetAttr("ref", "s1")
	c.Finish()
	root.Finish()

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var dump struct {
		SampleEvery int64 `json:"sample_every"`
		Traces      []struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(dump.Traces) != 1 || len(dump.Traces[0].Spans) != 2 {
		t.Fatalf("dump shape wrong: %+v", dump)
	}

	// Filter by trace ID.
	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?trace_id="+root.TraceHex(), nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), root.TraceHex()) {
		t.Fatalf("filtered dump failed: %d %s", rec.Code, rec.Body.String())
	}

	// Bad filter → 400.
	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?trace_id=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace_id should 400, got %d", rec.Code)
	}

	// Empty tracer → valid JSON with no traces.
	rec = httptest.NewRecorder()
	Handler(New(64, 1)).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"traces": []`) {
		t.Fatalf("empty dump wrong: %d %s", rec.Code, rec.Body.String())
	}
}
