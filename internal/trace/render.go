package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RenderTree formats one trace's spans as an indented tree with per-span
// timing and attributes — the shell's .trace output. Spans whose parent is
// missing from the slice (evicted from the ring, or recorded by another
// process) render as additional roots.
func RenderTree(spans []*Span) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	byID := make(map[uint64]*Span, len(spans))
	children := make(map[uint64][]*Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	var roots []*Span
	for _, s := range spans {
		if s.ParentID != 0 {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	order := func(ss []*Span) {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].Start.Equal(ss[j].Start) {
				return ss[i].Start.Before(ss[j].Start)
			}
			return ss[i].SpanID < ss[j].SpanID
		})
	}
	order(roots)
	for _, kids := range children {
		order(kids)
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%-*s %8s", strings.Repeat("  ", depth), 24-2*depth, s.Name, s.Dur.Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for i, r := range roots {
		if i == 0 {
			fmt.Fprintf(&b, "trace %016x (%d span(s))\n", r.TraceID, len(spans))
		}
		walk(r, 0)
	}
	return b.String()
}

// LineageEntry is one β invocation that touched a tuple: the lineage view
// of Definition 8's action sets, enriched with when it ran and what came of
// it.
type LineageEntry struct {
	TraceID uint64
	Instant string // from the enclosing tick/eval root, "" if unknown
	Query   string // enclosing continuous query or "oneshot"
	Span    *Span  // the β span itself
}

// Lineage scans the tracer's retained spans for β invocations (spans named
// spanName) whose attributes reference both the given query/relation name
// and the given tuple key fragment, resolving each hit's enclosing query
// and instant by walking the parent chain. Empty query or key match
// everything — `.lineage temperatures ""` lists every retained invocation
// feeding that relation. Results are in start order.
func (t *Tracer) Lineage(query, key, spanName string) []LineageEntry {
	spans := t.Snapshot()
	byID := make(map[uint64]*Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	var out []LineageEntry
	for _, s := range spans {
		if s.Name != spanName {
			continue
		}
		if key != "" && !strings.Contains(s.Attr("in"), key) && !strings.Contains(s.Attr("ref"), key) {
			continue
		}
		entry := LineageEntry{TraceID: s.TraceID, Query: "oneshot", Span: s}
		for p := byID[s.ParentID]; p != nil; p = byID[p.ParentID] {
			if q := p.Attr("query"); q != "" {
				entry.Query = q
			}
			if at := p.Attr("instant"); at != "" {
				entry.Instant = at
			}
			if p.ParentID == 0 {
				break
			}
		}
		if query != "" && entry.Query != query {
			continue
		}
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Span.Start.Before(out[j].Span.Start) })
	return out
}

// spanJSON is the wire shape of one span on /debug/trace.
type spanJSON struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

type traceJSON struct {
	TraceID string     `json:"trace_id"`
	Spans   []spanJSON `json:"spans"`
}

type dumpJSON struct {
	SampleEvery int64       `json:"sample_every"`
	Traces      []traceJSON `json:"traces"`
}

// Handler serves the tracer's retained spans as JSON, grouped by trace,
// newest trace first. Query parameter trace_id (hex) filters to one trace;
// limit bounds the number of traces returned (default 50).
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Snapshot()
		var filter uint64
		if q := r.URL.Query().Get("trace_id"); q != "" {
			id, err := strconv.ParseUint(q, 16, 64)
			if err != nil {
				http.Error(w, "trace: bad trace_id (want hex)", http.StatusBadRequest)
				return
			}
			filter = id
		}
		limit := 50
		if q := r.URL.Query().Get("limit"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n > 0 {
				limit = n
			}
		}
		grouped := make(map[uint64][]*Span)
		var order []uint64 // trace IDs by first appearance (ring is oldest-first)
		for _, s := range spans {
			if filter != 0 && s.TraceID != filter {
				continue
			}
			if _, seen := grouped[s.TraceID]; !seen {
				order = append(order, s.TraceID)
			}
			grouped[s.TraceID] = append(grouped[s.TraceID], s)
		}
		dump := dumpJSON{SampleEvery: t.SampleEvery(), Traces: []traceJSON{}}
		// Newest traces first.
		for i := len(order) - 1; i >= 0 && len(dump.Traces) < limit; i-- {
			id := order[i]
			tj := traceJSON{TraceID: fmt.Sprintf("%016x", id)}
			for _, s := range grouped[id] {
				sj := spanJSON{
					TraceID: fmt.Sprintf("%016x", s.TraceID),
					SpanID:  fmt.Sprintf("%016x", s.SpanID),
					Name:    s.Name,
					Start:   s.Start,
					DurNS:   int64(s.Dur),
				}
				if s.ParentID != 0 {
					sj.Parent = fmt.Sprintf("%016x", s.ParentID)
				}
				if len(s.Attrs) > 0 {
					sj.Attrs = make(map[string]string, len(s.Attrs))
					for _, a := range s.Attrs {
						sj.Attrs[a.Key] = a.Value
					}
				}
				tj.Spans = append(tj.Spans, sj)
			}
			dump.Traces = append(dump.Traces, tj)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
}
