module serena

go 1.22
